//! Fast inverse square root and logarithm approximations.
//!
//! The HAAN Square Root Inverter (Fig. 5) produces `1/sqrt(x)` from the variance using
//! the classic bit-level approximation with the magic constant `0x5F3759DF`, followed by
//! one Newton–Raphson refinement step `y ← y(1.5 − 0.5·x·y²)`. The derivation in the
//! paper relies on the Mitchell logarithm approximation
//! `log2(1 + m) ≈ m + σ` with `σ ≈ 0.450465`.
//!
//! This module provides:
//!
//! * [`fast_inv_sqrt_seed`] — the raw bit-trick initial guess,
//! * [`newton_refine`] — one Newton step,
//! * [`fast_inv_sqrt`] — seed plus a configurable number of Newton iterations,
//! * [`mitchell_log2`] / [`SIGMA_CORRECTION`] — the logarithm approximation used both
//!   in the derivation and by the ISD predictor unit,
//! * [`InvSqrtUnit`] — a small stateful wrapper with the iteration count and error
//!   telemetry used by the accelerator simulator.

use crate::error::NumericError;

/// The magic constant used to seed the inverse square root (cited as `0x5f3759df` in the
/// paper, Eq. 8).
pub const MAGIC_CONSTANT: u32 = 0x5F37_59DF;

/// The constant σ ≈ 0.0450465 that minimises the error of the Mitchell approximation
/// `log2(1 + m) ≈ m + σ` over `m ∈ [0, 1)` (Section IV-B; the paper prints the value as
/// `0.450465`, which is a typo — Lomont's derivation and the magic constant
/// `0x5F3759DF = 1.5·2²³·(127 − σ)` both require σ ≈ 0.0450465).
pub const SIGMA_CORRECTION: f64 = 0.045_046_5;

/// Computes the bit-trick initial approximation of `1/sqrt(x)`.
///
/// This reproduces the integer arithmetic of Eq. 8: the FP32 bit pattern of `x` is
/// halved and subtracted from the magic constant.
///
/// # Panics
///
/// Does not panic; non-positive or non-finite inputs produce a meaningless (but finite)
/// seed exactly as the hardware would. Use [`checked_fast_inv_sqrt`] for validation.
#[must_use]
pub fn fast_inv_sqrt_seed(x: f32) -> f32 {
    let bits = x.to_bits();
    let seed_bits = MAGIC_CONSTANT.wrapping_sub(bits >> 1);
    f32::from_bits(seed_bits)
}

/// Performs one Newton–Raphson refinement step for `y ≈ 1/sqrt(x)`:
/// `y₁ = y₀ · (1.5 − 0.5·x·y₀²)` (Eq. 9, where the paper folds `0.5·x` into `x·y²/2`).
#[must_use]
pub fn newton_refine(x: f32, y: f32) -> f32 {
    y * (1.5 - 0.5 * x * y * y)
}

/// Computes `1/sqrt(x)` with the bit-trick seed followed by `iterations` Newton steps.
///
/// The paper observes that a single iteration is adequate; the accelerator defaults to
/// one and the ablation bench sweeps 0–2.
#[must_use]
pub fn fast_inv_sqrt(x: f32, iterations: u32) -> f32 {
    let mut y = fast_inv_sqrt_seed(x);
    for _ in 0..iterations {
        y = newton_refine(x, y);
    }
    y
}

/// Validated version of [`fast_inv_sqrt`].
///
/// # Errors
///
/// Returns [`NumericError::NonPositive`] if `x` is not a positive finite number.
pub fn checked_fast_inv_sqrt(x: f32, iterations: u32) -> Result<f32, NumericError> {
    if !(x.is_finite() && x > 0.0) {
        return Err(NumericError::NonPositive(f64::from(x)));
    }
    Ok(fast_inv_sqrt(x, iterations))
}

/// Mitchell's logarithm approximation with the σ correction:
/// `log2(x) ≈ E − Q + M/2^L + σ` for `x = 2^(E−Q) (1 + M/2^L)`.
///
/// # Errors
///
/// Returns [`NumericError::NonPositive`] if `x` is not a positive finite number.
pub fn mitchell_log2(x: f32) -> Result<f64, NumericError> {
    if !(x.is_finite() && x > 0.0) {
        return Err(NumericError::NonPositive(f64::from(x)));
    }
    let bits = x.to_bits();
    let exponent = i64::from((bits >> 23) & 0xFF) - 127;
    let mantissa = f64::from(bits & 0x007F_FFFF) / f64::from(1u32 << 23);
    Ok(exponent as f64 + mantissa + SIGMA_CORRECTION)
}

/// Exact relative error of the fast inverse square root against `1/sqrt(x)`.
///
/// # Errors
///
/// Returns [`NumericError::NonPositive`] if `x` is not a positive finite number.
pub fn relative_error(x: f32, iterations: u32) -> Result<f64, NumericError> {
    if !(x.is_finite() && x > 0.0) {
        return Err(NumericError::NonPositive(f64::from(x)));
    }
    let exact = 1.0 / f64::from(x).sqrt();
    let approx = f64::from(fast_inv_sqrt(x, iterations));
    Ok(((approx - exact) / exact).abs())
}

/// A configurable inverse-square-root unit used by the accelerator simulator.
///
/// Beyond the numeric result it tracks how many operations were performed and the
/// worst relative error observed, which the hardware evaluation reports.
///
/// # Example
///
/// ```
/// use haan_numerics::invsqrt::InvSqrtUnit;
/// let mut unit = InvSqrtUnit::new(1);
/// let y = unit.compute(4.0)?;
/// assert!((y - 0.5).abs() < 1e-2);
/// # Ok::<(), haan_numerics::NumericError>(())
/// ```
#[derive(Debug, Clone)]
pub struct InvSqrtUnit {
    iterations: u32,
    operations: u64,
    max_relative_error: f64,
}

impl InvSqrtUnit {
    /// Creates a unit performing `iterations` Newton refinements per operation.
    #[must_use]
    pub fn new(iterations: u32) -> Self {
        Self {
            iterations,
            operations: 0,
            max_relative_error: 0.0,
        }
    }

    /// Number of Newton iterations per operation.
    #[must_use]
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Number of operations performed so far.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Worst relative error observed so far.
    #[must_use]
    pub fn max_relative_error(&self) -> f64 {
        self.max_relative_error
    }

    /// Computes `1/sqrt(x)` and updates telemetry.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::NonPositive`] if `x` is not a positive finite number.
    pub fn compute(&mut self, x: f32) -> Result<f32, NumericError> {
        let y = checked_fast_inv_sqrt(x, self.iterations)?;
        self.operations += 1;
        let err = relative_error(x, self.iterations)?;
        if err > self.max_relative_error {
            self.max_relative_error = err;
        }
        Ok(y)
    }

    /// Latency of one operation in cycles: one cycle for the seed (shift + subtract) and
    /// three cycles per Newton iteration (two multiplies and a fused subtract-multiply).
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        1 + 3 * u64::from(self.iterations)
    }
}

impl Default for InvSqrtUnit {
    fn default() -> Self {
        Self::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn seed_is_within_a_few_percent() {
        for &x in &[0.01f32, 0.5, 1.0, 2.0, 100.0, 12345.0] {
            let seed = fast_inv_sqrt_seed(x);
            let exact = 1.0 / x.sqrt();
            assert!(
                ((seed - exact) / exact).abs() < 0.035,
                "seed error too large at {x}"
            );
        }
    }

    #[test]
    fn one_newton_iteration_is_sub_percent() {
        for &x in &[1e-4f32, 0.1, 1.0, 3.7, 1e4] {
            let err = relative_error(x, 1).unwrap();
            assert!(err < 2e-3, "error {err} at {x}");
        }
    }

    #[test]
    fn two_iterations_beat_one() {
        for &x in &[0.3f32, 1.0, 42.0] {
            assert!(relative_error(x, 2).unwrap() <= relative_error(x, 1).unwrap());
        }
    }

    #[test]
    fn checked_rejects_bad_input() {
        assert!(checked_fast_inv_sqrt(0.0, 1).is_err());
        assert!(checked_fast_inv_sqrt(-2.0, 1).is_err());
        assert!(checked_fast_inv_sqrt(f32::NAN, 1).is_err());
        assert!(checked_fast_inv_sqrt(f32::INFINITY, 1).is_err());
    }

    #[test]
    fn known_values() {
        assert!((fast_inv_sqrt(4.0, 2) - 0.5).abs() < 1e-4);
        assert!((fast_inv_sqrt(1.0, 2) - 1.0).abs() < 1e-4);
        assert!((fast_inv_sqrt(0.25, 2) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn mitchell_log2_tracks_log2() {
        for &x in &[0.07f32, 0.5, 1.0, 1.5, 2.0, 10.0, 1000.0] {
            let approx = mitchell_log2(x).unwrap();
            let exact = f64::from(x).log2();
            assert!(
                (approx - exact).abs() < 0.06,
                "x={x} approx={approx} exact={exact}"
            );
        }
        assert!(mitchell_log2(0.0).is_err());
        assert!(mitchell_log2(-3.0).is_err());
    }

    #[test]
    fn unit_tracks_telemetry() {
        let mut unit = InvSqrtUnit::new(1);
        assert_eq!(unit.operations(), 0);
        unit.compute(2.0).unwrap();
        unit.compute(7.5).unwrap();
        assert_eq!(unit.operations(), 2);
        assert!(unit.max_relative_error() > 0.0);
        assert!(unit.max_relative_error() < 2e-3);
        assert_eq!(unit.latency_cycles(), 4);
        assert_eq!(InvSqrtUnit::default().iterations(), 1);
        assert_eq!(InvSqrtUnit::new(0).latency_cycles(), 1);
    }

    #[test]
    fn magic_constant_matches_paper() {
        assert_eq!(MAGIC_CONSTANT, 0x5F3759DF);
        // 0x5F3759DF ≈ 1.5 · 2^23 · (127 − σ); solving for σ recovers ≈ 0.0450465.
        let implied_sigma = 127.0 - f64::from(MAGIC_CONSTANT) / (1.5 * f64::from(1u32 << 23));
        assert!((implied_sigma - SIGMA_CORRECTION).abs() < 1e-3);
    }

    proptest! {
        #[test]
        fn prop_error_bound_over_wide_range(exp in -20i32..20, frac in 1.0f32..2.0) {
            let x = frac * 2f32.powi(exp);
            // Bound from Lomont's analysis: one Newton iteration keeps the relative
            // error below ~0.2%.
            prop_assert!(relative_error(x, 1).unwrap() < 2e-3);
        }

        #[test]
        fn prop_monotone_improvement(exp in -10i32..10, frac in 1.0f32..2.0) {
            let x = frac * 2f32.powi(exp);
            let e0 = relative_error(x, 0).unwrap();
            let e1 = relative_error(x, 1).unwrap();
            let e2 = relative_error(x, 2).unwrap();
            // Once an iteration lands within f32 rounding noise of the exact value, the
            // next iteration may wobble by an ulp; allow that slack.
            prop_assert!(e1 <= e0 + 1e-7);
            prop_assert!(e2 <= e1 + 1e-6);
        }

        #[test]
        fn prop_result_is_positive(exp in -20i32..20, frac in 1.0f32..2.0) {
            let x = frac * 2f32.powi(exp);
            prop_assert!(fast_inv_sqrt(x, 1) > 0.0);
        }
    }
}
