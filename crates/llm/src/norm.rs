//! Normalization operations and the [`Normalizer`] trait the HAAN algorithm plugs into.
//!
//! The model invokes the normalizer through two entry points:
//!
//! * [`Normalizer::normalize`] — one token vector at a time, the original scalar path
//!   (kept as the reference oracle);
//! * [`Normalizer::normalize_matrix_into`] — the batched hot path: a whole `seq × E`
//!   hidden-state matrix per normalization site, writing into a caller-provided
//!   matrix. The default implementation loops the scalar path (so custom normalizers
//!   keep working unchanged); the built-in normalizers override it with the fused,
//!   allocation-free kernels of [`haan_numerics::stats`], and the HAAN normalizer
//!   (in the `haan` core crate) dispatches it to a configurable execution backend —
//!   scalar oracle, fused, row-parallel, or the cycle-level accelerator simulator.
//!
//! Each invocation carries *which* normalization layer (global index) it is computing,
//! so an implementation can keep cross-layer state — exactly what HAAN's ISD-skipping
//! predictor needs.

use crate::config::NormKind;
use crate::error::LlmError;
use crate::tensor::Matrix;
use haan_numerics::stats::{normalize_rows_into, RowNormMode, VectorStats, DEFAULT_EPS};

/// Identifies one normalization-layer invocation within a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NormSite {
    /// Global index of the normalization layer, in execution order (0-based).
    pub layer_index: usize,
    /// Which kind of normalization this site applies.
    pub kind: NormKind,
}

/// A normalization operator applied to one token vector at a time.
///
/// `begin_sequence` is called before the first normalization layer of a forward pass
/// so that stateful implementations (like HAAN's predictor) can reset per-sample state.
///
/// # Example
///
/// ```
/// use haan_llm::norm::{LayerNorm, Normalizer, NormSite};
/// use haan_llm::NormKind;
///
/// let mut ln = LayerNorm::new();
/// let gamma = vec![1.0f32; 4];
/// let beta = vec![0.0f32; 4];
/// let site = NormSite { layer_index: 0, kind: NormKind::LayerNorm };
/// let out = ln.normalize(site, &[1.0, 2.0, 3.0, 4.0], &gamma, &beta);
/// let mean: f32 = out.iter().sum::<f32>() / 4.0;
/// assert!(mean.abs() < 1e-5);
/// ```
pub trait Normalizer {
    /// Normalizes the vector `z` with the learnable scale `gamma` and shift `beta`.
    fn normalize(&mut self, site: NormSite, z: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32>;

    /// Normalizes every row of `input` at the same [`NormSite`], writing into `out`.
    ///
    /// This is the batched hot path the transformer forward pass uses: one call per
    /// normalization site instead of one per token, so implementations can hoist
    /// per-site decisions (skip plan lookup, quantization policy, scratch buffers,
    /// execution-backend selection) out of the row loop. The default implementation
    /// delegates to [`Normalizer::normalize`] row by row, preserving the exact
    /// observable behavior (site order, per-row statistics) for third-party
    /// implementations; the built-in normalizers override it with fused batch
    /// kernels, and the HAAN normalizer dispatches it to a configurable execution
    /// backend (scalar / fused / row-parallel / accelerator-simulated).
    ///
    /// # Examples
    ///
    /// ```
    /// use haan_llm::norm::{NormSite, Normalizer, ReferenceNormalizer};
    /// use haan_llm::{Matrix, NormKind};
    ///
    /// let input = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, 4.0, 3.0, 2.0, 1.0])?;
    /// let gamma = vec![1.0f32; 4];
    /// let beta = vec![0.0f32; 4];
    /// let site = NormSite { layer_index: 0, kind: NormKind::LayerNorm };
    /// let mut out = Matrix::zeros(2, 4);
    /// ReferenceNormalizer::new().normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
    /// // Every row is normalized independently to (close to) zero mean.
    /// for row in 0..2 {
    ///     let mean: f32 = out.row(row).iter().sum::<f32>() / 4.0;
    ///     assert!(mean.abs() < 1e-5);
    /// }
    /// # Ok::<(), haan_llm::LlmError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Implementations panic when `out` has a different shape from `input`, or when
    /// `gamma` / `beta` do not have `input.cols()` elements (programmer error, same
    /// contract as the `debug_assert`s of the scalar path but enforced always since
    /// batched callers construct `out` themselves).
    fn normalize_matrix_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.shape(),
            out.shape(),
            "normalize_matrix_into shape mismatch"
        );
        for row in 0..input.rows() {
            let normalized = self.normalize(site, input.row(row), gamma, beta);
            out.row_mut(row).copy_from_slice(&normalized);
        }
    }

    /// Convenience wrapper over [`Normalizer::normalize_matrix_into`] that allocates
    /// the output matrix (once per call, not once per row).
    fn normalize_matrix(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
    ) -> Matrix {
        let mut out = Matrix::zeros(input.rows(), input.cols());
        self.normalize_matrix_into(site, input, gamma, beta, &mut out);
        out
    }

    /// Fused residual+norm site: writes `input + residual` into `sum_out` and the
    /// normalization of that sum into `out`.
    ///
    /// This is the transformer block's `attn_out + hidden → norm` seam. The default
    /// implementation is the composed sequence the block used before fusion existed —
    /// an elementwise add followed by [`Normalizer::normalize_matrix_into`] — so
    /// third-party normalizers observe exactly the same calls (same site, same summed
    /// matrix) as the unfused path. The HAAN normalizer overrides it to stream the
    /// add through the backend's fused residual+norm kernel.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan_llm::norm::{NormSite, Normalizer, ReferenceNormalizer};
    /// use haan_llm::{Matrix, NormKind};
    ///
    /// let input = Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0])?;
    /// let residual = Matrix::from_vec(1, 4, vec![0.5, 0.5, 0.5, 0.5])?;
    /// let gamma = vec![1.0f32; 4];
    /// let beta = vec![0.0f32; 4];
    /// let site = NormSite { layer_index: 0, kind: NormKind::LayerNorm };
    /// let (mut sum, mut normed) = (Matrix::zeros(1, 4), Matrix::zeros(1, 4));
    /// ReferenceNormalizer::new()
    ///     .normalize_residual_into(site, &input, &residual, &gamma, &beta, &mut sum, &mut normed);
    /// assert_eq!(sum.row(0), &[1.5, 2.5, 3.5, 4.5]);
    /// let mean: f32 = normed.row(0).iter().sum::<f32>() / 4.0;
    /// assert!(mean.abs() < 1e-5);
    /// # Ok::<(), haan_llm::LlmError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `residual` / `sum_out` / `out` differ from `input` in shape or when
    /// `gamma` / `beta` do not have `input.cols()` elements.
    #[allow(clippy::too_many_arguments)]
    fn normalize_residual_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        residual: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        sum_out: &mut Matrix,
        out: &mut Matrix,
    ) {
        assert_eq!(
            input.shape(),
            residual.shape(),
            "normalize_residual_into shape mismatch"
        );
        assert_eq!(
            input.shape(),
            sum_out.shape(),
            "normalize_residual_into shape mismatch"
        );
        for ((s, &a), &b) in sum_out
            .as_mut_slice()
            .iter_mut()
            .zip(input.as_slice())
            .zip(residual.as_slice())
        {
            *s = a + b;
        }
        self.normalize_matrix_into(site, sum_out, gamma, beta, out);
    }

    /// Norm+matmul-epilogue site: normalizes `input` once and multiplies the result
    /// into every weight matrix, writing `rows × weights[i].cols()` into `outs[i]`.
    ///
    /// This is the transformer block's `norm → Q/K/V projections` seam (and the MLP's
    /// `norm → w_in/w_gate` seam): the consumers share one set of row statistics. The
    /// default implementation is the composed sequence — materialize
    /// [`Normalizer::normalize_matrix`], then one blocked matmul per consumer — so
    /// third-party normalizers keep the unfused observable behavior. The HAAN
    /// normalizer overrides it to apply γβ inside the matmul's output-tile loop so
    /// the normalized matrix never materializes.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan_llm::norm::{NormSite, Normalizer, ReferenceNormalizer};
    /// use haan_llm::{Matrix, NormKind};
    ///
    /// let input = Matrix::from_vec(2, 2, vec![3.0, 1.0, -1.0, 5.0])?;
    /// let identity = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0])?;
    /// let gamma = vec![1.0f32; 2];
    /// let beta = vec![0.0f32; 2];
    /// let site = NormSite { layer_index: 0, kind: NormKind::LayerNorm };
    /// let mut outs = [Matrix::zeros(2, 2)];
    /// let mut reference = ReferenceNormalizer::new();
    /// reference.normalize_matmul_into(site, &input, &gamma, &beta, &[&identity], &mut outs)?;
    /// // Multiplying by the identity recovers the normalized matrix itself.
    /// let normed = reference.normalize_matrix(site, &input, &gamma, &beta);
    /// assert_eq!(outs[0].as_slice(), normed.as_slice());
    /// # Ok::<(), haan_llm::LlmError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when `weights` and `outs` disagree in
    /// count or when any weight/output pair is incompatible with `input`'s shape.
    fn normalize_matmul_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        weights: &[&Matrix],
        outs: &mut [Matrix],
    ) -> Result<(), LlmError> {
        if weights.len() != outs.len() {
            return Err(LlmError::ShapeMismatch {
                op: "normalize_matmul_into",
                lhs: (weights.len(), 0),
                rhs: (outs.len(), 0),
            });
        }
        let normed = self.normalize_matrix(site, input, gamma, beta);
        for (weight, out) in weights.iter().zip(outs.iter_mut()) {
            normed.matmul_into(weight, out)?;
        }
        Ok(())
    }

    /// Called before the first normalization layer of each token's forward pass.
    fn begin_sequence(&mut self) {}

    /// A short human-readable description used in reports.
    fn description(&self) -> String {
        "unnamed normalizer".to_string()
    }
}

impl NormKind {
    /// The numerics-crate row mode equivalent to this normalization kind.
    #[must_use]
    pub fn row_mode(self) -> RowNormMode {
        match self {
            NormKind::LayerNorm => RowNormMode::LayerNorm,
            NormKind::RmsNorm => RowNormMode::RmsNorm,
        }
    }
}

/// Shared fused batch kernel for the exact (reference) normalizers.
fn exact_batch_into(
    kind: NormKind,
    eps: f32,
    input: &Matrix,
    gamma: &[f32],
    beta: &[f32],
    out: &mut Matrix,
) {
    assert_eq!(
        input.shape(),
        out.shape(),
        "normalize_matrix_into shape mismatch"
    );
    let cols = input.cols();
    assert_eq!(
        gamma.len(),
        cols,
        "normalize_matrix_into gamma length mismatch"
    );
    assert_eq!(
        beta.len(),
        cols,
        "normalize_matrix_into beta length mismatch"
    );
    normalize_rows_into(
        input.as_slice(),
        cols,
        gamma,
        beta,
        kind.row_mode(),
        eps,
        out.as_mut_slice(),
    )
    .expect("buffer shapes were validated above");
}

/// Reference (exact, FP32) LayerNorm: `s = γ · (z − μ)/σ + β`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerNorm {
    eps: f32,
}

impl LayerNorm {
    /// Creates a LayerNorm with the default epsilon (1e-5).
    #[must_use]
    pub fn new() -> Self {
        Self { eps: DEFAULT_EPS }
    }

    /// Creates a LayerNorm with an explicit epsilon.
    #[must_use]
    pub fn with_eps(eps: f32) -> Self {
        Self { eps }
    }

    /// The epsilon added to the variance.
    #[must_use]
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

impl Normalizer for LayerNorm {
    fn normalize(&mut self, _site: NormSite, z: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32> {
        normalize_with_stats(z, gamma, beta, NormKind::LayerNorm, self.eps, None, None)
    }

    fn normalize_matrix_into(
        &mut self,
        _site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        out: &mut Matrix,
    ) {
        exact_batch_into(NormKind::LayerNorm, self.eps, input, gamma, beta, out);
    }

    fn description(&self) -> String {
        "reference LayerNorm (FP32)".to_string()
    }
}

/// Reference (exact, FP32) RMSNorm: `s = γ · z / rms(z) + β`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RmsNorm {
    eps: f32,
}

impl RmsNorm {
    /// Creates an RMSNorm with the default epsilon (1e-5).
    #[must_use]
    pub fn new() -> Self {
        Self { eps: DEFAULT_EPS }
    }

    /// Creates an RMSNorm with an explicit epsilon.
    #[must_use]
    pub fn with_eps(eps: f32) -> Self {
        Self { eps }
    }

    /// The epsilon added to the mean square.
    #[must_use]
    pub fn eps(&self) -> f32 {
        self.eps
    }
}

impl Normalizer for RmsNorm {
    fn normalize(&mut self, _site: NormSite, z: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32> {
        normalize_with_stats(z, gamma, beta, NormKind::RmsNorm, self.eps, None, None)
    }

    fn normalize_matrix_into(
        &mut self,
        _site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        out: &mut Matrix,
    ) {
        exact_batch_into(NormKind::RmsNorm, self.eps, input, gamma, beta, out);
    }

    fn description(&self) -> String {
        "reference RMSNorm (FP32)".to_string()
    }
}

/// A reference normalizer that dispatches on the site's [`NormKind`], used as the
/// "Original" configuration in the accuracy tables.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReferenceNormalizer {
    eps: f32,
}

impl ReferenceNormalizer {
    /// Creates a reference normalizer with the default epsilon.
    #[must_use]
    pub fn new() -> Self {
        Self { eps: DEFAULT_EPS }
    }
}

impl Normalizer for ReferenceNormalizer {
    fn normalize(&mut self, site: NormSite, z: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32> {
        normalize_with_stats(z, gamma, beta, site.kind, self.eps, None, None)
    }

    fn normalize_matrix_into(
        &mut self,
        site: NormSite,
        input: &Matrix,
        gamma: &[f32],
        beta: &[f32],
        out: &mut Matrix,
    ) {
        exact_batch_into(site.kind, self.eps, input, gamma, beta, out);
    }

    fn description(&self) -> String {
        "reference normalizer (FP32, exact statistics)".to_string()
    }
}

/// Core normalization kernel shared by the reference and HAAN implementations.
///
/// `mean_override` / `isd_override` replace the exact statistics when provided; HAAN
/// uses them to inject subsampled means and predicted or subsampled ISDs. For
/// [`NormKind::RmsNorm`] the mean is not used (the input is not re-centred) and the
/// ISD override is interpreted as `1/rms`.
#[must_use]
pub fn normalize_with_stats(
    z: &[f32],
    gamma: &[f32],
    beta: &[f32],
    kind: NormKind,
    eps: f32,
    mean_override: Option<f32>,
    isd_override: Option<f32>,
) -> Vec<f32> {
    if z.is_empty() {
        return Vec::new();
    }
    debug_assert_eq!(z.len(), gamma.len());
    debug_assert_eq!(z.len(), beta.len());
    let stats = VectorStats::compute(z);
    match kind {
        NormKind::LayerNorm => {
            let mean = mean_override.unwrap_or(stats.mean);
            let isd = isd_override.unwrap_or_else(|| stats.isd(eps));
            z.iter()
                .zip(gamma.iter().zip(beta))
                .map(|(&x, (&g, &b))| g * (x - mean) * isd + b)
                .collect()
        }
        NormKind::RmsNorm => {
            let inv_rms = isd_override.unwrap_or_else(|| 1.0 / stats.rms(eps));
            z.iter()
                .zip(gamma.iter().zip(beta))
                .map(|(&x, (&g, &b))| g * x * inv_rms + b)
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn site(kind: NormKind) -> NormSite {
        NormSite {
            layer_index: 0,
            kind,
        }
    }

    #[test]
    fn layernorm_output_has_zero_mean_unit_variance() {
        let z: Vec<f32> = (0..64).map(|i| (i as f32) * 0.3 - 5.0).collect();
        let gamma = vec![1.0f32; 64];
        let beta = vec![0.0f32; 64];
        let mut ln = LayerNorm::new();
        let out = ln.normalize(site(NormKind::LayerNorm), &z, &gamma, &beta);
        let stats = VectorStats::compute(&out);
        assert!(stats.mean.abs() < 1e-5);
        assert!((stats.variance - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_applies_affine_transform() {
        let z = vec![1.0f32, 3.0];
        let gamma = vec![2.0f32, 2.0];
        let beta = vec![10.0f32, 10.0];
        let mut ln = LayerNorm::new();
        let out = ln.normalize(site(NormKind::LayerNorm), &z, &gamma, &beta);
        // Normalized values are ±1, so output is 10 ± 2.
        assert!((out[0] - 8.0).abs() < 1e-3);
        assert!((out[1] - 12.0).abs() < 1e-3);
    }

    #[test]
    fn rmsnorm_does_not_recenter() {
        let z = vec![2.0f32, 2.0, 2.0, 2.0];
        let gamma = vec![1.0f32; 4];
        let beta = vec![0.0f32; 4];
        let mut rn = RmsNorm::new();
        let out = rn.normalize(site(NormKind::RmsNorm), &z, &gamma, &beta);
        // RMS of a constant vector is the constant, so output is ~1 everywhere (not 0).
        for v in out {
            assert!((v - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn reference_normalizer_dispatches_on_kind() {
        let z = vec![1.0f32, 2.0, 3.0, 4.0];
        let gamma = vec![1.0f32; 4];
        let beta = vec![0.0f32; 4];
        let mut reference = ReferenceNormalizer::new();
        let ln_out = reference.normalize(site(NormKind::LayerNorm), &z, &gamma, &beta);
        let rms_out = reference.normalize(site(NormKind::RmsNorm), &z, &gamma, &beta);
        assert_ne!(ln_out, rms_out);
        let mut ln = LayerNorm::new();
        assert_eq!(
            ln.normalize(site(NormKind::LayerNorm), &z, &gamma, &beta),
            ln_out
        );
        assert!(reference.description().contains("reference"));
    }

    #[test]
    fn overrides_replace_exact_statistics() {
        let z = vec![1.0f32, 2.0, 3.0, 4.0];
        let gamma = vec![1.0f32; 4];
        let beta = vec![0.0f32; 4];
        let exact = normalize_with_stats(&z, &gamma, &beta, NormKind::LayerNorm, 0.0, None, None);
        let forced = normalize_with_stats(
            &z,
            &gamma,
            &beta,
            NormKind::LayerNorm,
            0.0,
            Some(0.0),
            Some(1.0),
        );
        assert_ne!(exact, forced);
        // With mean 0 and ISD 1 the "normalized" output is just the input.
        assert_eq!(forced, z);
        assert!(
            normalize_with_stats(&[], &[], &[], NormKind::LayerNorm, 0.0, None, None).is_empty()
        );
    }

    #[test]
    fn eps_accessors() {
        assert_eq!(LayerNorm::with_eps(1e-3).eps(), 1e-3);
        assert_eq!(RmsNorm::with_eps(1e-3).eps(), 1e-3);
        assert_eq!(LayerNorm::new().eps(), DEFAULT_EPS);
        assert_eq!(
            RmsNorm::default().eps(),
            0.0_f32.max(RmsNorm::default().eps())
        );
        let mut ln = LayerNorm::new();
        ln.begin_sequence(); // default impl is a no-op
        assert!(ln.description().contains("LayerNorm"));
        assert!(RmsNorm::new().description().contains("RMSNorm"));
    }

    #[test]
    fn batched_reference_matches_scalar_reference() {
        // The fused batched kernel must agree with the scalar oracle row by row for
        // both kinds, including rows that straddle the chunk-lane width.
        let cols = 37;
        let rows = 5;
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 97 % 41) as f32 - 20.0) / 4.0)
            .collect();
        let input = Matrix::from_vec(rows, cols, data).unwrap();
        let gamma: Vec<f32> = (0..cols).map(|i| 1.0 + (i % 7) as f32 * 0.05).collect();
        let beta: Vec<f32> = (0..cols).map(|i| (i % 4) as f32 * 0.1 - 0.15).collect();
        for kind in [NormKind::LayerNorm, NormKind::RmsNorm] {
            let mut reference = ReferenceNormalizer::new();
            let batched = reference.normalize_matrix(site(kind), &input, &gamma, &beta);
            for row in 0..rows {
                let scalar = reference.normalize(site(kind), input.row(row), &gamma, &beta);
                for (col, (a, b)) in batched.row(row).iter().zip(&scalar).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                        "{kind}: row {row} col {col}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn default_batched_impl_loops_the_scalar_path() {
        // A normalizer that does not override the batched entry point must observe
        // one scalar call per row, in row order.
        struct Recorder(Vec<usize>);
        impl Normalizer for Recorder {
            fn normalize(&mut self, _s: NormSite, z: &[f32], _g: &[f32], _b: &[f32]) -> Vec<f32> {
                self.0.push(z.len());
                z.to_vec()
            }
        }
        let input = Matrix::from_vec(3, 4, (0..12).map(|i| i as f32).collect()).unwrap();
        let gamma = vec![1.0f32; 4];
        let beta = vec![0.0f32; 4];
        let mut recorder = Recorder(Vec::new());
        let out = recorder.normalize_matrix(site(NormKind::LayerNorm), &input, &gamma, &beta);
        assert_eq!(out, input);
        assert_eq!(recorder.0, vec![4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn batched_entry_point_rejects_mismatched_output() {
        let input = Matrix::zeros(2, 4);
        let mut out = Matrix::zeros(2, 3);
        let gamma = vec![1.0f32; 4];
        let beta = vec![0.0f32; 4];
        LayerNorm::new().normalize_matrix_into(
            site(NormKind::LayerNorm),
            &input,
            &gamma,
            &beta,
            &mut out,
        );
    }

    #[test]
    fn norm_kind_maps_to_row_mode() {
        assert_eq!(NormKind::LayerNorm.row_mode(), RowNormMode::LayerNorm);
        assert_eq!(NormKind::RmsNorm.row_mode(), RowNormMode::RmsNorm);
    }

    proptest! {
        #[test]
        fn prop_layernorm_is_scale_invariant(
            xs in proptest::collection::vec(-5.0f32..5.0, 8..64),
            scale in 0.5f32..20.0,
        ) {
            // LayerNorm(a·z) == LayerNorm(z) for a > 0 (up to eps effects).
            prop_assume!(VectorStats::compute(&xs).variance > 1e-3);
            let gamma = vec![1.0f32; xs.len()];
            let beta = vec![0.0f32; xs.len()];
            let scaled: Vec<f32> = xs.iter().map(|v| v * scale).collect();
            let a = normalize_with_stats(&xs, &gamma, &beta, NormKind::LayerNorm, 0.0, None, None);
            let b = normalize_with_stats(&scaled, &gamma, &beta, NormKind::LayerNorm, 0.0, None, None);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-2);
            }
        }

        #[test]
        fn prop_rmsnorm_output_rms_is_one(xs in proptest::collection::vec(-5.0f32..5.0, 8..64)) {
            prop_assume!(xs.iter().any(|v| v.abs() > 1e-2));
            let gamma = vec![1.0f32; xs.len()];
            let beta = vec![0.0f32; xs.len()];
            let out = normalize_with_stats(&xs, &gamma, &beta, NormKind::RmsNorm, 0.0, None, None);
            let ms: f32 = out.iter().map(|v| v * v).sum::<f32>() / out.len() as f32;
            prop_assert!((ms.sqrt() - 1.0).abs() < 1e-2);
        }
    }
}
