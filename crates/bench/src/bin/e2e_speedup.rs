//! Section V-B end-to-end experiment: plugging HAAN into an FPGA spatial LLM accelerator
//! (Chen et al., TRETS 2024) for GPT-2 355M yields a ~1.11x end-to-end speedup at input
//! lengths 128-512.

use haan::HaanConfig;
use haan_accel::{AccelConfig, HaanAccelerator};
use haan_baselines::{DfxEngine, EndToEndModel, NormEngine, NormWorkload};
use haan_bench::{fmt_ratio, print_experiment_header, MarkdownTable};
use haan_llm::NormKind;
use haan_numerics::Format;

fn main() {
    print_experiment_header(
        "End-to-end (Section V-B)",
        "GPT-2 355M on an FPGA spatial accelerator with its norm engine replaced by HAAN",
    );
    let host = EndToEndModel::gpt2_355m_host();
    // The host's native normalization engine is a DFX-style sequential vector engine.
    let native = DfxEngine::published();
    let haan = HaanAccelerator::new(
        AccelConfig::haan_v1(),
        HaanConfig::builder()
            .label("HAAN (GPT-2 355M)")
            .subsample(512)
            .format(Format::Fp16)
            .build(),
    );

    let mut table = MarkdownTable::new(vec![
        "input length",
        "norm speedup (HAAN vs native)",
        "end-to-end speedup (model)",
        "end-to-end speedup (paper)",
    ]);
    let mut sum = 0.0;
    let seq_lens = [128usize, 256, 512];
    for &seq_len in &seq_lens {
        let workload = NormWorkload {
            embedding_dim: 1024,
            num_layers: 49,
            seq_len,
            kind: NormKind::LayerNorm,
        };
        let norm_speedup = native.latency_us(&workload) / haan.latency_us(&workload);
        let e2e = host.end_to_end_speedup(norm_speedup);
        sum += e2e;
        table.push_row(vec![
            seq_len.to_string(),
            fmt_ratio(norm_speedup),
            fmt_ratio(e2e),
            "~1.11x".to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nAverage end-to-end speedup: {} (paper: ≈ 1.11x).",
        fmt_ratio(sum / seq_lens.len() as f64)
    );
}
