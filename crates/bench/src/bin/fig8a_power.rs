//! Figure 8(a): normalized power of HAAN-v1/v2 vs SOLE, DFX and MHAA on the GPT-2
//! normalization workload across sequence lengths.

use haan::{HaanConfig, SkipPlan};
use haan_accel::{AccelConfig, HaanAccelerator};
use haan_baselines::{
    compare_engines, DfxEngine, MhaaEngine, NormEngine, NormWorkload, SoleEngine,
};
use haan_bench::{fmt_ratio, print_experiment_header, MarkdownTable};
use haan_numerics::Format;

fn gpt2_plan() -> SkipPlan {
    SkipPlan {
        start: 85,
        end: 95,
        decay: -0.035,
        correlation: -0.999,
        calibration_anchor_log_isd: -1.5,
    }
}

fn main() {
    print_experiment_header(
        "Figure 8(a)",
        "normalized power of normalization engines on GPT2-1.5B",
    );
    let algorithm = HaanConfig::builder()
        .label("HAAN (GPT-2)")
        .subsample(800)
        .format(Format::Fp16)
        .build();
    let v1 = HaanAccelerator::new(AccelConfig::haan_v1(), algorithm.clone()).with_plan(gpt2_plan());
    let v2 = HaanAccelerator::new(AccelConfig::haan_v2(), algorithm).with_plan(gpt2_plan());
    let sole = SoleEngine::default();
    let dfx = DfxEngine::default();
    let mhaa = MhaaEngine::default();

    let mut table =
        MarkdownTable::new(vec!["seq len", "HAAN-v1", "HAAN-v2", "SOLE", "MHAA", "DFX"]);
    let mut dfx_reduction_sum = 0.0;
    let seq_lens = [128usize, 256, 512, 1024];
    for &seq_len in &seq_lens {
        let workload = NormWorkload::gpt2_1_5b(seq_len);
        let others: [&dyn NormEngine; 4] = [&v2, &sole, &mhaa, &dfx];
        let rows = compare_engines(&v1, &others, &workload);
        dfx_reduction_sum += 1.0 - 1.0 / rows[4].normalized_power;
        table.push_row(vec![
            seq_len.to_string(),
            fmt_ratio(rows[0].normalized_power),
            fmt_ratio(rows[1].normalized_power),
            fmt_ratio(rows[2].normalized_power),
            fmt_ratio(rows[3].normalized_power),
            fmt_ratio(rows[4].normalized_power),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nAverage power reduction of HAAN-v1 vs DFX: {:.0}% (paper: 61-64%).",
        dfx_reduction_sum / seq_lens.len() as f64 * 100.0
    );
    println!("Paper reference: HAAN draws slightly less power than SOLE and MHAA.");
}
