//! Inter-sample pipelining of the three accelerator stages.
//!
//! The input statistics calculator, square root inverter and normalization units
//! operate on different token vectors concurrently (Section IV-C: "operate in a
//! pipelined manner across multiple input samples"). The steady-state throughput is
//! therefore set by the slowest stage, and the paper's `(pd, pn)` choices aim to
//! balance the stages ("the time of the different stages of the pipeline is evenly
//! distributed").

/// Per-vector cycle counts of the three pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// Input statistics calculator cycles per vector (throughput-limiting part).
    pub isc: u64,
    /// Square root inverter (or predictor) cycles per vector.
    pub sqrt_inv: u64,
    /// Normalization unit cycles per vector.
    pub norm: u64,
}

impl StageTiming {
    /// The slowest stage, which sets the steady-state initiation interval.
    #[must_use]
    pub fn bottleneck(&self) -> u64 {
        self.isc.max(self.sqrt_inv).max(self.norm)
    }

    /// Sum of the stage latencies (the pipeline fill time for the first vector).
    #[must_use]
    pub fn fill(&self) -> u64 {
        self.isc + self.sqrt_inv + self.norm
    }

    /// Stage-balance metric in `(0, 1]`: the mean stage time divided by the bottleneck.
    /// A perfectly balanced pipeline scores 1.
    #[must_use]
    pub fn balance(&self) -> f64 {
        let bottleneck = self.bottleneck();
        if bottleneck == 0 {
            return 1.0;
        }
        let mean = (self.isc + self.sqrt_inv + self.norm) as f64 / 3.0;
        mean / bottleneck as f64
    }
}

/// Timing of one pipelined run over a batch of vectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineReport {
    /// Number of vectors processed.
    pub vectors: u64,
    /// Per-vector stage timing.
    pub stages: StageTiming,
    /// Total cycles, including the pipeline fill.
    pub total_cycles: u64,
    /// Steady-state initiation interval (cycles between consecutive vector completions).
    pub initiation_interval: u64,
}

impl PipelineReport {
    /// Average cycles per vector (total divided by vector count).
    #[must_use]
    pub fn cycles_per_vector(&self) -> f64 {
        if self.vectors == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.vectors as f64
        }
    }
}

/// Computes the pipelined latency of processing `vectors` vectors with the given
/// per-vector stage timing, over `pipelines` parallel sample pipelines.
#[must_use]
pub fn pipeline_latency(stages: StageTiming, vectors: u64, pipelines: u64) -> PipelineReport {
    let pipelines = pipelines.max(1);
    let per_pipeline = vectors.div_ceil(pipelines);
    let initiation_interval = stages.bottleneck();
    let total_cycles = if per_pipeline == 0 {
        0
    } else {
        stages.fill() + (per_pipeline - 1) * initiation_interval
    };
    PipelineReport {
        vectors,
        stages,
        total_cycles,
        initiation_interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_vector_latency_is_the_fill_time() {
        let stages = StageTiming {
            isc: 10,
            sqrt_inv: 6,
            norm: 13,
        };
        let report = pipeline_latency(stages, 1, 1);
        assert_eq!(report.total_cycles, 29);
        assert_eq!(report.initiation_interval, 13);
        assert_eq!(report.vectors, 1);
    }

    #[test]
    fn steady_state_throughput_is_set_by_the_bottleneck() {
        let stages = StageTiming {
            isc: 10,
            sqrt_inv: 6,
            norm: 13,
        };
        let report = pipeline_latency(stages, 101, 1);
        assert_eq!(report.total_cycles, 29 + 100 * 13);
        // Average cycles per vector approaches the bottleneck for long batches.
        assert!((report.cycles_per_vector() - 13.0).abs() < 0.3);
    }

    #[test]
    fn balanced_stages_score_one() {
        let balanced = StageTiming {
            isc: 8,
            sqrt_inv: 8,
            norm: 8,
        };
        assert!((balanced.balance() - 1.0).abs() < 1e-12);
        let skewed = StageTiming {
            isc: 2,
            sqrt_inv: 2,
            norm: 20,
        };
        assert!(skewed.balance() < 0.5);
        assert_eq!(
            StageTiming {
                isc: 0,
                sqrt_inv: 0,
                norm: 0
            }
            .balance(),
            1.0
        );
    }

    #[test]
    fn multiple_pipelines_divide_the_batch() {
        let stages = StageTiming {
            isc: 5,
            sqrt_inv: 5,
            norm: 5,
        };
        let single = pipeline_latency(stages, 100, 1);
        let dual = pipeline_latency(stages, 100, 2);
        assert!(dual.total_cycles < single.total_cycles);
        assert_eq!(dual.total_cycles, 15 + 49 * 5);
        // Zero pipelines is clamped to one.
        assert_eq!(
            pipeline_latency(stages, 10, 0).total_cycles,
            pipeline_latency(stages, 10, 1).total_cycles
        );
    }

    #[test]
    fn zero_vectors_take_zero_cycles() {
        let stages = StageTiming {
            isc: 5,
            sqrt_inv: 5,
            norm: 5,
        };
        let report = pipeline_latency(stages, 0, 1);
        assert_eq!(report.total_cycles, 0);
        assert_eq!(report.cycles_per_vector(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_total_cycles_bounded_by_sequential_execution(
            isc in 1u64..64,
            sqrt_inv in 1u64..64,
            norm in 1u64..64,
            vectors in 1u64..512,
        ) {
            let stages = StageTiming { isc, sqrt_inv, norm };
            let report = pipeline_latency(stages, vectors, 1);
            // Pipelining can never be slower than fully sequential execution…
            prop_assert!(report.total_cycles <= stages.fill() * vectors);
            // …and never faster than the bottleneck stage processing every vector.
            prop_assert!(report.total_cycles >= stages.bottleneck() * vectors);
        }
    }
}
