//! Table III: FPGA resource consumption and power of the HAAN accelerator for
//! FP32 / FP16 / INT8 inputs at two `(pd, pn)` points each.

use haan_accel::power::PowerModel;
use haan_accel::resources::{paper_table3_resources, DeviceCapacity};
use haan_accel::{AccelConfig, ResourceEstimate};
use haan_bench::{print_experiment_header, MarkdownTable};

fn main() {
    print_experiment_header(
        "Table III",
        "HAAN accelerator resource and power model vs the paper's Vivado results",
    );
    let device = DeviceCapacity::alveo_u280();
    let power_model = PowerModel::calibrated();
    let paper = paper_table3_resources();

    let mut table = MarkdownTable::new(vec![
        "input format (pd, pn)",
        "LUT (model)",
        "LUT (paper)",
        "FF (model)",
        "FF (paper)",
        "DSP (model)",
        "DSP (paper)",
        "Power W (model)",
        "Power W (paper)",
    ]);

    for ((label, config), (paper_label, paper_resources, paper_power)) in
        AccelConfig::table3_rows().iter().zip(&paper)
    {
        assert_eq!(label, paper_label);
        let estimate = ResourceEstimate::for_config(config);
        estimate.check_fits_u280_or_panic(device);
        let power = power_model.estimate_full_activity(config).total_w();
        let (lut_util, _, dsp_util) = estimate.utilisation(device);
        table.push_row(vec![
            label.clone(),
            format!("{}K / {:.1}%", estimate.lut / 1000, lut_util * 100.0),
            format!("{}K", paper_resources.lut / 1000),
            format!("{}K", estimate.ff / 1000),
            format!("{}K", paper_resources.ff / 1000),
            format!("{} / {:.1}%", estimate.dsp, dsp_util * 100.0),
            format!("{}", paper_resources.dsp),
            format!("{power:.3}"),
            format!("{paper_power:.3}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nKey shape checks: FP32 draws ~1.3x the FP16 power, INT8 (256,256) draws the least, and \
         shrinking pd under subsampling frees DSPs at the cost of LUT/FF."
    );
}

trait CheckFits {
    fn check_fits_u280_or_panic(&self, device: DeviceCapacity);
}

impl CheckFits for ResourceEstimate {
    fn check_fits_u280_or_panic(&self, device: DeviceCapacity) {
        self.check_fits(device)
            .expect("Table III designs fit on the U280");
    }
}
