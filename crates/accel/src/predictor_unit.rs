//! The scalar ISD predictor unit (Section IV-B, last paragraph).
//!
//! For layers inside the calibrated skip range, the square-root inverter is bypassed
//! and a small scalar unit computes the predicted ISD in the logarithm domain from the
//! anchor layer's ISD and the decay coefficient `e` (the paper implements it with a
//! floating-point IP core; its hardware cost is negligible).

use haan::SkipPlan;

/// Functional + timing result of one ISD prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionResult {
    /// The predicted ISD.
    pub isd: f32,
    /// Latency in cycles.
    pub cycles: u64,
}

/// The ISD predictor unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsdPredictorUnit {
    plan: SkipPlan,
}

impl IsdPredictorUnit {
    /// Latency of one prediction: a multiply-add in the log domain plus the
    /// exponentiation lookup (4 cycles total for the scalar FP pipeline).
    pub const LATENCY_CYCLES: u64 = 4;

    /// Creates the unit for a calibrated skip plan.
    #[must_use]
    pub fn new(plan: SkipPlan) -> Self {
        Self { plan }
    }

    /// The plan driving this unit.
    #[must_use]
    pub fn plan(&self) -> &SkipPlan {
        &self.plan
    }

    /// Whether the given layer's ISD is produced by this unit (instead of the square
    /// root inverter).
    #[must_use]
    pub fn handles_layer(&self, layer: usize) -> bool {
        self.plan.is_skipped(layer)
    }

    /// Predicts the ISD of `layer` given the anchor layer's observed ISD.
    #[must_use]
    pub fn predict(&self, anchor_isd: f32, layer: usize) -> PredictionResult {
        let isd = self
            .plan
            .predictor()
            .predict_isd(f64::from(anchor_isd.max(f32::MIN_POSITIVE)), layer)
            .unwrap_or(f64::from(anchor_isd)) as f32;
        PredictionResult {
            isd,
            cycles: Self::LATENCY_CYCLES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SkipPlan {
        SkipPlan {
            start: 50,
            end: 60,
            decay: -0.05,
            correlation: -1.0,
            calibration_anchor_log_isd: -1.0,
        }
    }

    #[test]
    fn handles_only_layers_inside_the_range() {
        let unit = IsdPredictorUnit::new(plan());
        assert!(!unit.handles_layer(50)); // the anchor still computes its ISD
        assert!(unit.handles_layer(51));
        assert!(unit.handles_layer(60));
        assert!(!unit.handles_layer(61));
        assert_eq!(unit.plan().start, 50);
    }

    #[test]
    fn prediction_follows_the_log_linear_model() {
        let unit = IsdPredictorUnit::new(plan());
        let anchor = 0.4f32;
        let result = unit.predict(anchor, 55);
        let expected = (f64::from(anchor).ln() - 0.05 * 5.0).exp() as f32;
        assert!((result.isd - expected).abs() < 1e-5);
        assert_eq!(result.cycles, IsdPredictorUnit::LATENCY_CYCLES);
    }

    #[test]
    fn layers_before_the_anchor_fall_back_to_the_anchor_value() {
        let unit = IsdPredictorUnit::new(plan());
        let result = unit.predict(0.4, 10);
        assert!((result.isd - 0.4).abs() < 1e-6);
    }

    #[test]
    fn non_positive_anchor_is_clamped() {
        let unit = IsdPredictorUnit::new(plan());
        let result = unit.predict(0.0, 55);
        assert!(result.isd.is_finite());
    }
}
