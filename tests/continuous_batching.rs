//! Continuous-batching suite: chunked prefill, mid-flight join/leave, and
//! shared-prefix attach must all be **bit-identical** to solo decode while
//! changing the *shape* of the work — long prompts amortized over ticks,
//! retired capacity backfilled from the admission queue, and common prompt
//! prefixes paying their K/V pages once.
//!
//! Why exact equality holds: every op outside attention is row-local, the
//! fused kernels reduce in a fixed order regardless of batch width, and HAAN's
//! skip anchors are recorded and consumed per row within one pass — so
//! stacking prompt chunks into the decode passes, splitting a prefill across
//! ticks, or mapping already-materialized prefix pages computes the same
//! floats, not merely close ones (see `tests/kv_decode.rs` for the base
//! invariant).

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::{ModelConfig, ModelFamily, StreamingModel, TransformerModel};
use haan_serve::{KvPoolPolicy, ServeConfig, ServeEngine, StreamStatus};

fn tiny_model() -> TransformerModel {
    TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid test model")
}

/// A 2-block variant of the tiny model with a long context window, for the
/// 128-token shared prefix and the 256-token joining prompt (the tiny config
/// caps at 32 positions).
fn long_context_config(max_seq_len: usize) -> ModelConfig {
    ModelConfig {
        name: format!("tiny-long-{max_seq_len}"),
        family: ModelFamily::Gpt2,
        num_blocks: 2,
        embedding_dim: 32,
        num_heads: 4,
        mlp_dim: 64,
        vocab_size: 64,
        max_seq_len,
        final_norm: true,
        paper_embedding_dim: 32,
    }
}

fn haan_config() -> HaanConfig {
    HaanConfig::builder()
        .label("continuous batching")
        .backend(BackendSelection::Fused)
        .build()
}

/// A skip plan whose range straddles block boundaries of the 9-site tiny
/// model, so prompt chunks cross the anchor/skipped seam every tick.
fn skip_plan() -> SkipPlan {
    SkipPlan {
        start: 2,
        end: 5,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    }
}

#[test]
fn chunked_streaming_prefill_matches_one_shot_across_skip_anchor_sites() {
    // StreamingModel-level parity: a prompt prefilled in tick-sized chunks
    // under a HAAN skip plan (whose anchor sites the chunk boundaries
    // straddle) decodes exactly like the one-shot prefill.
    let model = tiny_model();
    let prompt: Vec<u32> = (0..13u32).map(|i| (i * 5) % 8).collect();
    const STEPS: usize = 5;
    let mut oracle_norm = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
    let mut oracle = StreamingModel::new(&model, &prompt).expect("one-shot stream");
    let expected = oracle.decode(STEPS, &mut oracle_norm).expect("one-shot");
    for chunk in [1usize, 2, 3, 5, 13, 64] {
        let mut norm = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
        let mut chunked = StreamingModel::new(&model, &prompt).expect("chunked stream");
        chunked.set_prefill_chunk_rows(chunk);
        let generated = chunked.decode(STEPS, &mut norm).expect("chunked decode");
        assert_eq!(generated, expected, "chunk {chunk} diverged from one-shot");
    }
}

#[test]
fn chunked_group_prefill_is_bit_identical_and_amortized_over_ticks() {
    // The tentpole invariant at the group level: prompts longer than the chunk
    // bound prefill across several ticks *inside the batched lockstep passes*,
    // emit their first token only on the tick that drains the backlog, and
    // generate exactly what solo full-recompute decode generates — under a
    // skip plan the chunk boundaries straddle.
    let model = tiny_model();
    const CHUNK: usize = 3;
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(skip_plan()),
        prefill_chunk_rows: CHUNK,
        kv_pool: KvPoolPolicy {
            page_rows: 8,
            capacity_rows: 4 * model.config().max_seq_len * model.config().num_blocks,
        },
        ..Default::default()
    });
    let prompts: [&[u32]; 4] = [
        &[2],
        &[1, 9, 17, 4, 8],
        &[3, 3, 3, 3, 3, 3, 3],
        &[5, 1, 0, 7, 2, 6, 4, 3, 5, 1, 0, 7, 2],
    ];
    let mut group = engine
        .decode_group(&model, &prompts)
        .expect("valid prompts");
    assert_eq!(group.prefill_chunk_rows(), CHUNK);
    const TICKS: usize = 9;
    let mut first_token_tick = [0usize; 4];
    for tick in 1..=TICKS {
        let results = group.step_all().expect("chunked tick");
        for (i, result) in results.iter().enumerate() {
            if result.is_some() && first_token_tick[i] == 0 {
                first_token_tick[i] = tick;
            }
        }
    }
    // A prompt of L tokens needs ⌈L / CHUNK⌉ chunk ticks before its first
    // token — the split-across-K-ticks shape the test exists to pin.
    for (i, prompt) in prompts.iter().enumerate() {
        assert_eq!(
            first_token_tick[i],
            prompt.len().div_ceil(CHUNK),
            "stream {i}: first token must land on the backlog-draining tick"
        );
    }
    // Bit-identical to solo full recompute, over everything each stream made.
    for (i, prompt) in prompts.iter().enumerate() {
        let generated = group.generated(i);
        assert_eq!(generated.len(), TICKS + 1 - first_token_tick[i]);
        let mut private = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
        let expected = oracle.decode(generated.len(), &mut private).unwrap();
        assert_eq!(generated, expected.as_slice(), "stream {i} diverged");
    }
    // The chunk rows rode the batched passes: mean occupancy beats the one
    // row per stream per tick that pure decode would carry.
    let stats = group.stats();
    assert_eq!(stats.joins, prompts.len() as u64);
    assert_eq!(stats.ticks, TICKS as u64);
    assert!(
        stats.mean_tick_occupancy_rows() > prompts.len() as f64,
        "chunked prefill must raise tick occupancy above pure decode, got {}",
        stats.mean_tick_occupancy_rows()
    );
    engine.shutdown();
}

#[test]
fn mid_flight_join_matches_solo_oracle_and_leave_backfills_the_slot() {
    // Continuous feeding: a stream joins a live group and matches its solo
    // oracle; a stream joining a full pool queues, and the tick after an
    // active stream leaves (cancel) it activates — the freed slot is
    // backfilled from the admission queue without restarting the group.
    let model = tiny_model();
    let blocks = model.config().num_blocks;
    // 20 pages of 8 rows: two resident streams grow to 8 pages each, which
    // pins the pool above the admission watermark and below the activation
    // gate for a third 9-token prompt (9 rows → 8 pages) until one leaves.
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(skip_plan()),
        prefill_chunk_rows: 2,
        kv_pool: KvPoolPolicy {
            page_rows: 8,
            capacity_rows: 20 * 8,
        },
        ..Default::default()
    });
    let prompts: [&[u32]; 2] = [&[1, 9, 17, 4], &[4, 8, 15, 16]];
    let mut group = engine
        .decode_group(&model, &prompts)
        .expect("valid prompts");
    // Grow both residents past one page per block (8 rows) so the pool holds
    // 2 × blocks × 2 pages = 16 of the 20 pages.
    for tick in 1..=7 {
        let results = group.step_all().expect("warm-up tick");
        // The 4-token prompts drain their 2-row chunks over the first two
        // ticks; from then on every tick yields a token.
        assert_eq!(results[0].is_some(), tick >= 2);
        assert_eq!(results[1].is_some(), tick >= 2);
    }
    let pool = engine.kv_pool(model.config().embedding_dim);
    assert_eq!(pool.pages_in_use(), 2 * blocks * 2);

    let joiner_prompt: Vec<u32> = vec![7, 2, 5, 1, 6, 0, 3, 4, 2];
    let joiner = group.add_stream(&joiner_prompt).expect("valid prompt");
    assert_eq!(group.status(joiner), StreamStatus::Queued);
    // Only 4 pages are free; the joiner needs blocks × ⌈9/8⌉ = 8, so it must
    // stay queued while both residents hold their pages.
    let results = group.step_all().expect("full-pool tick");
    assert_eq!(group.status(joiner), StreamStatus::Queued);
    assert!(results[joiner].is_none());
    assert!(results[0].is_some() && results[1].is_some());

    // Stream 0 leaves (client cancellation): its pages free this instant, and
    // the very next tick activates the queued joiner into the freed capacity.
    let leaves_before = group.stats().leaves;
    assert!(group.cancel(0));
    assert_eq!(group.status(0), StreamStatus::Cancelled);
    assert_eq!(group.stats().leaves, leaves_before + 1);
    group.step_all().expect("backfill tick");
    assert_eq!(
        group.status(joiner),
        StreamStatus::Active,
        "the queued stream must backfill the freed slot on the next tick"
    );
    // Drain the joiner's chunked backlog and decode a few tokens.
    for _ in 0..7 {
        group.step_all().expect("joiner tick");
    }
    let generated = group.generated(joiner);
    assert!(
        !generated.is_empty(),
        "the joiner must have started emitting"
    );
    let mut private = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
    let mut oracle = StreamingModel::new_full_recompute(&model, &joiner_prompt).unwrap();
    let expected = oracle.decode(generated.len(), &mut private).unwrap();
    assert_eq!(
        generated,
        expected.as_slice(),
        "mid-flight joiner diverged from its solo oracle"
    );
    // The survivor was never perturbed by the join/leave churn.
    let mut private = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
    let mut oracle = StreamingModel::new_full_recompute(&model, prompts[1]).unwrap();
    let expected = oracle
        .decode(group.generated(1).len(), &mut private)
        .unwrap();
    assert_eq!(group.generated(1), expected.as_slice());
    let stats = group.stats();
    assert_eq!(stats.joins, 3, "two construction joins plus the backfill");
    assert!(stats.leaves >= 1);
    engine.shutdown();
}

#[test]
fn eight_streams_share_a_128_token_prefix_bit_identically_and_cheaply() {
    // The acceptance bar: 8 streams decoding behind one interned 128-token
    // (8-page) prefix generate exactly what 8 unshared streams generate,
    // while the shared pool holds < 40 % of the unshared pages — and every
    // page drains on teardown.
    let model = TransformerModel::new(&long_context_config(192), 42).expect("valid model");
    let page_rows = 16usize;
    let config = || ServeConfig {
        normalizer: haan_config(),
        kv_pool: KvPoolPolicy {
            page_rows,
            capacity_rows: 256 * page_rows,
        },
        ..Default::default()
    };
    let prefix_tokens: Vec<u32> = (0..128u32).map(|i| (i * 11) % 64).collect();
    let suffixes: Vec<Vec<u32>> = (0..8u32).map(|i| vec![i % 64, (i * 13 + 7) % 64]).collect();
    let base_prompt: [u32; 3] = [1, 2, 3];
    const TICKS: usize = 4;

    // Shared engine: one interned prefix, eight attached streams.
    let mut shared_engine = ServeEngine::start(config());
    let prefix = shared_engine
        .intern_prefix(&model, &prefix_tokens)
        .expect("whole-page prefix");
    assert_eq!(prefix.rows(), 128);
    // page_count is the whole-prefix footprint: 8 pages in each block.
    assert_eq!(
        prefix.page_count(),
        model.config().num_blocks * (128 / page_rows)
    );
    // Interning the same content again returns the same handle — no recompute.
    let again = shared_engine
        .intern_prefix(&model, &prefix_tokens)
        .expect("re-intern");
    assert!(std::sync::Arc::ptr_eq(&prefix, &again));
    let shared_pool = shared_engine.kv_pool(model.config().embedding_dim);
    let prefix_pages = prefix.page_count();
    assert_eq!(shared_pool.pages_in_use(), prefix_pages);
    let mut shared_group = shared_engine
        .decode_group(&model, &[&base_prompt])
        .expect("base stream");
    let shared_indices: Vec<usize> = suffixes
        .iter()
        .map(|suffix| {
            shared_group
                .add_stream_with_prefix(&prefix, suffix)
                .expect("attach to shared prefix")
        })
        .collect();
    for _ in 0..TICKS {
        shared_group.step_all().expect("shared tick");
    }
    let shared_pages = shared_pool.pages_in_use();

    // Unshared engine: the same eight prompts, each materializing its own
    // copy of the prefix.
    let mut unshared_engine = ServeEngine::start(config());
    let full_prompts: Vec<Vec<u32>> = suffixes
        .iter()
        .map(|suffix| {
            let mut prompt = prefix_tokens.clone();
            prompt.extend_from_slice(suffix);
            prompt
        })
        .collect();
    let mut unshared_refs: Vec<&[u32]> = vec![&base_prompt];
    unshared_refs.extend(full_prompts.iter().map(Vec::as_slice));
    let mut unshared_group = unshared_engine
        .decode_group(&model, &unshared_refs)
        .expect("unshared prompts");
    for _ in 0..TICKS {
        unshared_group.step_all().expect("unshared tick");
    }
    let unshared_pages = unshared_engine
        .kv_pool(model.config().embedding_dim)
        .pages_in_use();

    // Bit-identical outputs, stream by stream (and against a solo oracle).
    for (slot, &index) in shared_indices.iter().enumerate() {
        assert_eq!(
            shared_group.generated(index),
            unshared_group.generated(slot + 1),
            "shared-prefix stream {slot} diverged from its unshared twin"
        );
        assert_eq!(shared_group.tokens(index).len(), 130 + TICKS);
    }
    let mut private = HaanNormalizer::new(haan_config());
    let mut oracle = StreamingModel::new(&model, &full_prompts[0]).unwrap();
    let expected = oracle.decode(TICKS, &mut private).unwrap();
    assert_eq!(
        shared_group.generated(shared_indices[0]),
        expected.as_slice()
    );

    // The memory acceptance bar: shared residency under 40 % of unshared.
    assert!(
        (shared_pages as f64) < 0.4 * unshared_pages as f64,
        "shared prefix must cut residency below 40 %: {shared_pages} vs {unshared_pages}"
    );
    assert!(shared_pages >= prefix_pages, "the prefix pages stay mapped");

    // Teardown: streams release their references first, the interned prefix
    // keeps its pages alive until the engine drops, then everything drains.
    drop(prefix);
    drop(again);
    drop(shared_group);
    assert_eq!(
        shared_pool.pages_in_use(),
        prefix_pages,
        "after the streams drop, only the interned prefix holds pages"
    );
    shared_engine.shutdown();
    drop(shared_engine);
    assert_eq!(
        shared_pool.pages_in_use(),
        0,
        "refcounts must drain to zero"
    );
    assert_eq!(shared_pool.bytes_in_use(), 0);
    unshared_engine.shutdown();
}

#[test]
fn fused_decode_group_is_bit_identical_to_the_unfused_path_and_the_solo_oracle() {
    // Cross-operation fusion regression: a DecodeGroup running with the fusion
    // sites enabled (the default — residual+norm and norm+matmul-epilogue
    // request shapes inside every block) must generate exactly what the same
    // group generates with fusion disabled (the pre-fusion composed op order:
    // separate add → norm → matmul), and exactly what solo full-recompute
    // decode generates — under a skip plan whose anchors both fused shapes
    // record and consume.
    let model = tiny_model();
    let unfused_config = || {
        HaanConfig::builder()
            .label("continuous batching unfused")
            .backend(BackendSelection::Fused)
            .fusion(false)
            .build()
    };
    let prompts: [&[u32]; 3] = [&[2], &[1, 9, 17, 4, 8], &[5, 1, 0, 7, 2, 6, 4, 3]];
    const TICKS: usize = 8;
    let mut generated: Vec<Vec<Vec<u32>>> = Vec::new();
    for config in [haan_config(), unfused_config()] {
        assert_eq!(config.fusion_enabled, !config.label.contains("unfused"));
        let mut engine = ServeEngine::start(ServeConfig {
            normalizer: config,
            plan: Some(skip_plan()),
            prefill_chunk_rows: 3,
            kv_pool: KvPoolPolicy {
                page_rows: 8,
                capacity_rows: 4 * model.config().max_seq_len * model.config().num_blocks,
            },
            ..Default::default()
        });
        let mut group = engine
            .decode_group(&model, &prompts)
            .expect("valid prompts");
        for _ in 0..TICKS {
            group.step_all().expect("tick");
        }
        generated.push(
            (0..prompts.len())
                .map(|i| group.generated(i).to_vec())
                .collect(),
        );
        engine.shutdown();
    }
    assert_eq!(
        generated[0], generated[1],
        "fused group diverged from the pre-fusion composed path"
    );
    // Both also equal solo full-recompute decode, with fusion on and off.
    for (i, prompt) in prompts.iter().enumerate() {
        for config in [haan_config(), unfused_config()] {
            let mut private = HaanNormalizer::new(config).with_plan(skip_plan());
            let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
            let expected = oracle.decode(generated[0][i].len(), &mut private).unwrap();
            assert_eq!(
                generated[0][i], expected,
                "stream {i} diverged from its solo full-recompute oracle"
            );
        }
    }
}

#[test]
fn long_prompt_joining_a_wide_group_never_stalls_resident_streams() {
    // The latency acceptance bar: a 256-token prompt joining a 64-stream
    // group prefills in 32-row chunks stacked into the shared passes, and no
    // resident stream's next token slips by even one tick — the joiner's
    // whole prefill costs residents nothing but the chunk rows riding along.
    let model = TransformerModel::new(&long_context_config(320), 42).expect("valid model");
    const WIDTH: usize = 64;
    const CHUNK: usize = 32;
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        prefill_chunk_rows: CHUNK,
        kv_pool: KvPoolPolicy {
            page_rows: 16,
            capacity_rows: 16384,
        },
        ..Default::default()
    });
    let prompts: Vec<Vec<u32>> = (0..WIDTH as u32)
        .map(|i| vec![i % 64, (i * 3 + 1) % 64, (i * 7 + 2) % 64])
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine
        .decode_group(&model, &prompt_refs)
        .expect("wide group");
    for _ in 0..2 {
        let results = group.step_all().expect("warm-up tick");
        assert!(results.iter().take(WIDTH).all(Option::is_some));
    }

    let joiner_prompt: Vec<u32> = (0..256u32).map(|i| (i * 29 + 3) % 64).collect();
    let joiner = group.add_stream(&joiner_prompt).expect("long prompt");
    let prefill_ticks = joiner_prompt.len().div_ceil(CHUNK);
    for tick in 1..=prefill_ticks {
        let results = group.step_all().expect("prefill tick");
        assert!(
            results.iter().take(WIDTH).all(Option::is_some),
            "tick {tick}: a resident stream missed its token during the join"
        );
        assert_eq!(
            results[joiner].is_some(),
            tick == prefill_ticks,
            "the joiner emits exactly when its {prefill_ticks}-tick backlog drains"
        );
    }
    // The joiner's output is the solo-decode output, chunking and batching
    // notwithstanding.
    let mut results_after = Vec::new();
    for _ in 0..2 {
        results_after.push(group.step_all().expect("steady tick")[joiner]);
    }
    assert!(results_after.iter().all(Option::is_some));
    let generated = group.generated(joiner);
    assert_eq!(generated.len(), 3);
    let mut private = HaanNormalizer::new(haan_config());
    let mut oracle = StreamingModel::new(&model, &joiner_prompt).unwrap();
    let expected = oracle.decode(generated.len(), &mut private).unwrap();
    assert_eq!(
        generated,
        expected.as_slice(),
        "joiner diverged from solo decode"
    );
    // Occupancy: every tick carried at least the resident width, and the
    // prefill ticks carried the chunk rows on top.
    let stats = group.stats();
    assert!(stats.mean_tick_occupancy_rows() > WIDTH as f64);
    engine.shutdown();
}
