//! Bit-accurate software IEEE 754 binary16 ("half precision").
//!
//! The HAAN accelerator accepts inputs and produces outputs in FP16 or FP32
//! (Section IV of the paper). The host simulation works in `f32`, so [`Fp16`]
//! provides the rounding behaviour an FP16 interface would introduce: values are
//! stored as the 16-bit pattern and converted with round-to-nearest-even.

use std::fmt;

/// An IEEE 754 binary16 value stored as its bit pattern.
///
/// # Example
///
/// ```
/// use haan_numerics::Fp16;
/// let x = Fp16::from_f32(1.0 / 3.0);
/// // Half precision has ~3 decimal digits.
/// assert!((x.to_f32() - 1.0 / 3.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp16(u16);

const EXP_BITS: u32 = 5;
const MAN_BITS: u32 = 10;
const EXP_BIAS: i32 = 15;

impl Fp16 {
    /// Positive zero.
    pub const ZERO: Fp16 = Fp16(0);
    /// One.
    pub const ONE: Fp16 = Fp16(0x3C00);
    /// Largest finite value (65504).
    pub const MAX: Fp16 = Fp16(0x7BFF);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: Fp16 = Fp16(0x0400);
    /// Positive infinity.
    pub const INFINITY: Fp16 = Fp16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: Fp16 = Fp16(0xFC00);

    /// Builds an [`Fp16`] from its raw bit pattern.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        Self(bits)
    }

    /// Returns the raw bit pattern.
    #[must_use]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to half precision with round-to-nearest-even,
    /// saturating overflow to infinity as IEEE 754 requires.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        // NaN / infinity.
        if exp == 0xFF {
            return if man != 0 {
                Fp16(sign | 0x7E00) // quiet NaN
            } else {
                Fp16(sign | 0x7C00)
            };
        }

        // Re-bias the exponent from f32 (bias 127) to f16 (bias 15).
        let unbiased = exp - 127;
        let half_exp = unbiased + EXP_BIAS;

        if half_exp >= 0x1F {
            // Overflow to infinity.
            return Fp16(sign | 0x7C00);
        }

        if half_exp <= 0 {
            // Subnormal or underflow to zero.
            if half_exp < -(MAN_BITS as i32) {
                return Fp16(sign);
            }
            // Include the implicit leading one, then shift into the subnormal range:
            // value = full_man * 2^(unbiased-23) must become half_man * 2^-24,
            // so half_man = full_man >> (-unbiased - 1).
            let full_man = man | 0x0080_0000;
            let shift = (-unbiased - 1) as u32;
            let half_man = full_man >> shift;
            let round_bit = 1u32 << (shift - 1);
            let rounded = if (full_man & round_bit) != 0
                && ((full_man & (round_bit - 1)) != 0 || (half_man & 1) != 0)
            {
                half_man + 1
            } else {
                half_man
            };
            return Fp16(sign | rounded as u16);
        }

        // Normal case: keep 10 mantissa bits with round-to-nearest-even.
        let half_man = man >> 13;
        let round_bit = man & 0x1000;
        let sticky = man & 0x0FFF;
        let mut result = sign | ((half_exp as u16) << MAN_BITS) | half_man as u16;
        if round_bit != 0 && (sticky != 0 || (half_man & 1) != 0) {
            // Carry may propagate into the exponent, which is the correct IEEE behaviour.
            result = result.wrapping_add(1);
        }
        Fp16(result)
    }

    /// Converts back to `f32` exactly (every f16 is representable in f32).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 >> 15) << 31;
        let exp = u32::from((self.0 >> MAN_BITS) & 0x1F);
        let man = u32::from(self.0 & 0x03FF);

        if exp == 0 {
            if man == 0 {
                return f32::from_bits(sign);
            }
            // Subnormal: value = man * 2^-24.
            let value = man as f32 * 2f32.powi(-(MAN_BITS as i32) - EXP_BIAS + 1);
            return if sign != 0 { -value } else { value };
        }
        if exp == 0x1F {
            return if man == 0 {
                f32::from_bits(sign | 0x7F80_0000)
            } else {
                f32::NAN
            };
        }
        let f32_exp = (exp as i32 - EXP_BIAS + 127) as u32;
        f32::from_bits(sign | (f32_exp << 23) | (man << 13))
    }

    /// True when the value is NaN.
    #[must_use]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True when the value is positive or negative infinity.
    #[must_use]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// True when the value is finite (not NaN, not infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// The sign, exponent and mantissa fields, as used by the square-root inverter
    /// derivation in Section IV-B of the paper.
    #[must_use]
    pub fn fields(self) -> (bool, u16, u16) {
        (
            self.0 >> 15 == 1,
            (self.0 >> MAN_BITS) & 0x1F,
            self.0 & 0x03FF,
        )
    }

    /// Number of exponent bits in the format.
    #[must_use]
    pub fn exponent_bits() -> u32 {
        EXP_BITS
    }

    /// Number of mantissa bits in the format.
    #[must_use]
    pub fn mantissa_bits() -> u32 {
        MAN_BITS
    }

    /// The exponent bias of the format.
    #[must_use]
    pub fn exponent_bias() -> i32 {
        EXP_BIAS
    }
}

impl From<f32> for Fp16 {
    fn from(value: f32) -> Self {
        Self::from_f32(value)
    }
}

impl From<Fp16> for f32 {
    fn from(value: Fp16) -> Self {
        value.to_f32()
    }
}

impl fmt::Display for Fp16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Quantizes a slice of `f32` through FP16 and back, returning the rounded values.
///
/// This is how the simulation applies an "FP16 interface" to a tensor.
#[must_use]
pub fn round_trip_slice(values: &[f32]) -> Vec<f32> {
    values.iter().map(|&v| Fp16::from_f32(v).to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_constants() {
        assert_eq!(Fp16::ONE.to_f32(), 1.0);
        assert_eq!(Fp16::ZERO.to_f32(), 0.0);
        assert_eq!(Fp16::MAX.to_f32(), 65504.0);
        assert_eq!(Fp16::MIN_POSITIVE.to_f32(), 2f32.powi(-14));
        assert!(Fp16::INFINITY.is_infinite());
        assert!(Fp16::NEG_INFINITY.is_infinite());
    }

    #[test]
    fn simple_values_are_exact() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -3.25, 1024.0, 0.125] {
            assert_eq!(Fp16::from_f32(v).to_f32(), v, "{v}");
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(Fp16::from_f32(1.0e6).is_infinite());
        assert!(Fp16::from_f32(-1.0e6).is_infinite());
        assert_eq!(Fp16::from_f32(-1.0e6).to_f32(), f32::NEG_INFINITY);
    }

    #[test]
    fn underflow_goes_to_zero_or_subnormal() {
        assert_eq!(Fp16::from_f32(1.0e-10).to_f32(), 0.0);
        let sub = Fp16::from_f32(3.0e-7);
        assert!(sub.to_f32() > 0.0);
        assert!(sub.to_f32() < 2f32.powi(-14));
    }

    #[test]
    fn nan_propagates() {
        assert!(Fp16::from_f32(f32::NAN).is_nan());
        assert!(Fp16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn fields_match_ieee_layout() {
        let (s, e, m) = Fp16::from_f32(1.5).fields();
        assert!(!s);
        assert_eq!(e, 15); // biased exponent of 2^0
        assert_eq!(m, 0x200); // mantissa .5 -> top bit set
        let (s, _, _) = Fp16::from_f32(-2.0).fields();
        assert!(s);
    }

    #[test]
    fn rounding_is_to_nearest_even() {
        // 2049 is exactly between 2048 and 2050 in half precision (ulp = 2 at this scale);
        // round-to-nearest-even chooses 2048.
        assert_eq!(Fp16::from_f32(2049.0).to_f32(), 2048.0);
        assert_eq!(Fp16::from_f32(2051.0).to_f32(), 2052.0);
    }

    #[test]
    fn round_trip_slice_matches_elementwise() {
        let xs = [0.1f32, 0.2, 123.456, -9.87];
        let rt = round_trip_slice(&xs);
        for (a, b) in xs.iter().zip(&rt) {
            assert_eq!(Fp16::from_f32(*a).to_f32(), *b);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_error_within_half_ulp(v in -60000.0f32..60000.0) {
            let h = Fp16::from_f32(v);
            let back = h.to_f32();
            // Relative error bounded by 2^-11 for normal values.
            if v.abs() > 1e-4 {
                prop_assert!(((back - v) / v).abs() < 2f32.powi(-10), "{} -> {}", v, back);
            }
        }

        #[test]
        fn prop_double_conversion_is_idempotent(v in -60000.0f32..60000.0) {
            let once = Fp16::from_f32(v).to_f32();
            let twice = Fp16::from_f32(once).to_f32();
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }

        #[test]
        fn prop_all_bit_patterns_convert_without_panic(bits in proptest::num::u16::ANY) {
            let h = Fp16::from_bits(bits);
            let f = h.to_f32();
            if h.is_finite() {
                prop_assert!(f.is_finite());
                // And converting back must give exactly the same bits (f16 ⊂ f32),
                // modulo NaN payloads which we do not preserve.
                prop_assert_eq!(Fp16::from_f32(f).to_bits(), bits);
            }
        }
    }
}
