//! Error type of the serving layer.

use std::fmt;

/// Errors surfaced by the serving engine and sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The engine has shut down (or its worker is gone); the request was not, or may
    /// not have been, executed.
    Shutdown,
    /// The request was malformed (shape mismatch, empty batch, zero width).
    InvalidRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Shutdown => write!(f, "serving engine has shut down"),
            ServeError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ServeError::Shutdown.to_string().contains("shut down"));
        let invalid = ServeError::InvalidRequest("cols = 0".to_string());
        assert!(invalid.to_string().contains("cols = 0"));
    }
}
