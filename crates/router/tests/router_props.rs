//! Property tests of the routing tier under arbitrary
//! place/step/preempt/migrate/cancel interleavings.
//!
//! Two invariants, checked for every generated op stream:
//!
//! * **Page ledger** — pool pages only ever belong to live streams. After the
//!   drill ends and every remaining session is cancelled, all groups' pools
//!   must report zero pages in use: no leak survives migration churn, no
//!   double-free panics fired along the way (the pool panics on double
//!   release, so surviving the stream is itself part of the proof).
//! * **Bit-parity** — whatever sequence of parks, resumes, and cross-group
//!   migrations a stream went through, its generated tokens must equal its
//!   solo full-recompute oracle across every skip-anchor site.

use haan::{BackendSelection, HaanConfig};
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::{ModelConfig, StreamingModel, TransformerModel};
use haan_router::{PlacementPolicy, Router, RouterConfig, SessionId};
use haan_serve::{KvPoolPolicy, ServeConfig};
use proptest::prelude::*;

const GROUPS: usize = 3;

fn serve_config() -> ServeConfig {
    ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        // 24 pages of 4 rows per group: tight enough that random churn
        // queues and preempts, loose enough that streams make progress.
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: 96,
        },
        ..Default::default()
    }
}

/// A deterministic prompt per op payload: 2–5 tokens inside tiny_test's
/// 64-token vocabulary.
fn prompt_for(which: u8) -> Vec<u32> {
    let len = 2 + (which as usize % 4);
    (0..len as u32)
        .map(|i| (u32::from(which) * 11 + i * 7) % 60 + 1)
        .collect()
}

proptest! {
    #[test]
    fn arbitrary_routing_interleavings_keep_the_ledger_and_parity(
        ops in proptest::collection::vec((0u8..5, 0u8..16, 0u8..GROUPS as u8), 1..40)
    ) {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).expect("model");
        let mut router = Router::with_uniform_groups(
            &model,
            GROUPS,
            &serve_config(),
            RouterConfig {
                placement: PlacementPolicy::LeastLoaded,
                // Interning pins pages by design; the ledger drill wants
                // every page owned by a cancellable stream.
                auto_prefix_min_count: 0,
                ..RouterConfig::default()
            },
        )
        .expect("fleet starts");
        let mut ids: Vec<SessionId> = Vec::new();
        let mut prompts: Vec<Vec<u32>> = Vec::new();
        for (kind, which, group) in ops {
            match kind {
                0 => {
                    let prompt = prompt_for(which);
                    ids.push(router.place(&prompt).expect("placement"));
                    prompts.push(prompt);
                }
                1 => {
                    // Exhausted groups are a reported outcome, not a failure.
                    router.step_all().expect("tick");
                }
                2 => {
                    if !ids.is_empty() {
                        let id = ids[which as usize % ids.len()];
                        router.preempt(id);
                    }
                }
                3 => {
                    if !ids.is_empty() {
                        let id = ids[which as usize % ids.len()];
                        // Already-there / not-live are legal refusals.
                        let _ = router.migrate(id, group as usize);
                    }
                }
                _ => {
                    if !ids.is_empty() {
                        let id = ids[which as usize % ids.len()];
                        router.cancel(id);
                    }
                }
            }
        }
        // Let in-flight resumes land, then check parity for every stream:
        // whatever it lived through, its transcript matches the solo oracle.
        router.step_all().expect("settling tick");
        router.step_all().expect("settling tick");
        for (id, prompt) in ids.iter().zip(&prompts) {
            let generated = router.generated(*id).to_vec();
            let mut oracle =
                StreamingModel::new_full_recompute(&model, prompt).expect("oracle");
            let expected = oracle
                .decode(generated.len(), &mut ReferenceNormalizer::new())
                .expect("oracle decode");
            prop_assert_eq!(&generated, &expected);
        }
        // Ledger: cancel everything still live; every pool must drain to
        // zero pages — across however many migrations moved pages between
        // pools, nothing leaked and nothing double-freed.
        for &id in &ids {
            router.cancel(id);
        }
        for g in 0..router.num_groups() {
            let pool = router.engine(g).kv_pool(model.config().embedding_dim);
            prop_assert_eq!(pool.pages_in_use(), 0, "group {} leaked pages", g);
        }
    }
}
