//! The flight recorder: a bounded ring of structured, clock-stamped events.
//!
//! Every event carries the microsecond timestamp of the serving engine's
//! injected clock and an optional **correlation ID** naming the decode stream
//! it belongs to, so a stream's full lifecycle (offer → admit/queue → chunked
//! prefill → preempt → resume → finish) can be reconstructed after the fact
//! from the recorder alone — the chaos drills assert exactly that. The ring is
//! bounded: once `capacity` events are held, each append drops the oldest
//! event and bumps [`FlightRecorder::dropped`], so a long-running engine pays
//! constant memory.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Which injected fault fired (mirrors the serving fault plan's sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A batch was artificially delayed.
    SlowBatch,
    /// A batch was failed and retried.
    FailBatch,
    /// The worker thread was killed.
    PanicWorker,
}

/// What happened, with the numbers that mattered at the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A stream was offered to admission control.
    Offer {
        /// Estimated pool footprint of the stream, pages.
        est_pages: u64,
    },
    /// The offer was admitted: the stream starts (pre)filling now.
    Admit,
    /// The offer was queued: the stream holds no pages yet.
    Queue,
    /// The offer was refused with a typed retry-after hint.
    Shed {
        /// Suggested client backoff, microseconds.
        retry_after_us: u64,
    },
    /// A queued stream was activated and begins (chunked) prefill.
    Activate,
    /// One prefill chunk of `rows` rows was drained into a lockstep tick.
    ChunkDrain {
        /// Prompt rows fed in this chunk.
        rows: u64,
    },
    /// An interned prefix's pages were attached to a joining stream.
    PrefixAttach {
        /// Cached positions mapped from the shared prefix.
        shared_rows: u64,
    },
    /// The stream was preempted (parked, pages freed) under pool pressure.
    Preempt,
    /// A parked stream resumed (its cache will be re-prefilled).
    Resume {
        /// Rows re-prefilled to rebuild the parked stream's cache.
        reprefill_rows: u64,
    },
    /// A page allocation failed with the typed exhaustion error.
    PoolExhausted {
        /// Pages the failing allocation asked for.
        requested_pages: u64,
        /// Pages that were free at that moment.
        free_pages: u64,
    },
    /// The engine dispatched one coalesced batch to the normalizer.
    BatchDispatch {
        /// Requests coalesced into the batch.
        requests: u64,
        /// Total rows across those requests.
        rows: u64,
    },
    /// A seeded fault fired in the worker loop.
    FaultInjected {
        /// Which fault site fired.
        kind: FaultKind,
    },
    /// The stream decoded to completion.
    Finish {
        /// Tokens the stream generated.
        generated: u64,
    },
    /// The stream was cancelled by its client.
    Cancel,
    /// A router placed the stream on a decode group.
    Place {
        /// Index of the chosen group in the router's fleet.
        group: u64,
    },
    /// A router migrated the stream between decode groups (parked on the
    /// source, adopted — and transparently re-prefilled — by the destination).
    Migrate {
        /// Index of the group the stream left.
        from_group: u64,
        /// Index of the group that adopted it.
        to_group: u64,
    },
    /// A refcount-0 interned prefix was evicted from the bounded prefix
    /// store; its pages returned to the pool.
    PrefixEvict {
        /// Cached positions the evicted prefix covered.
        rows: u64,
    },
}

impl EventKind {
    /// Short stable label (used by dumps and name-keyed assertions).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::Offer { .. } => "offer",
            EventKind::Admit => "admit",
            EventKind::Queue => "queue",
            EventKind::Shed { .. } => "shed",
            EventKind::Activate => "activate",
            EventKind::ChunkDrain { .. } => "chunk_drain",
            EventKind::PrefixAttach { .. } => "prefix_attach",
            EventKind::Preempt => "preempt",
            EventKind::Resume { .. } => "resume",
            EventKind::PoolExhausted { .. } => "pool_exhausted",
            EventKind::BatchDispatch { .. } => "batch_dispatch",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::Finish { .. } => "finish",
            EventKind::Cancel => "cancel",
            EventKind::Place { .. } => "place",
            EventKind::Migrate { .. } => "migrate",
            EventKind::PrefixEvict { .. } => "prefix_evict",
        }
    }
}

/// One recorded event: clock stamp, optional stream correlation, payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsEvent {
    /// Microseconds on the engine's injected clock (since engine start).
    pub t_us: u64,
    /// Correlation ID of the decode stream this event belongs to, if any
    /// (engine-wide events like batch dispatch carry `None`).
    pub stream: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>10} us] ", self.t_us)?;
        match self.stream {
            Some(id) => write!(f, "stream {id:<4} ")?,
            None => write!(f, "engine      ")?,
        }
        match self.kind {
            EventKind::Offer { est_pages } => write!(f, "offer (est {est_pages} pages)"),
            EventKind::Shed { retry_after_us } => {
                write!(f, "shed (retry after ~{retry_after_us} us)")
            }
            EventKind::ChunkDrain { rows } => write!(f, "chunk_drain ({rows} rows)"),
            EventKind::PrefixAttach { shared_rows } => {
                write!(f, "prefix_attach ({shared_rows} shared rows)")
            }
            EventKind::Resume { reprefill_rows } => {
                write!(f, "resume (re-prefill {reprefill_rows} rows)")
            }
            EventKind::PoolExhausted {
                requested_pages,
                free_pages,
            } => write!(
                f,
                "pool_exhausted (wanted {requested_pages}, free {free_pages})"
            ),
            EventKind::BatchDispatch { requests, rows } => {
                write!(f, "batch_dispatch ({requests} requests, {rows} rows)")
            }
            EventKind::FaultInjected { kind } => write!(f, "fault_injected ({kind:?})"),
            EventKind::Finish { generated } => write!(f, "finish ({generated} tokens)"),
            EventKind::Place { group } => write!(f, "place (group {group})"),
            EventKind::Migrate {
                from_group,
                to_group,
            } => write!(f, "migrate (group {from_group} -> {to_group})"),
            EventKind::PrefixEvict { rows } => write!(f, "prefix_evict ({rows} rows)"),
            _ => write!(f, "{}", self.kind.label()),
        }
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    ring: VecDeque<ObsEvent>,
    appended: u64,
    dropped: u64,
}

/// A bounded ring buffer of [`ObsEvent`]s.
///
/// ```
/// use haan_obs::{EventKind, FlightRecorder, ObsEvent};
///
/// let recorder = FlightRecorder::new(128);
/// recorder.record(ObsEvent { t_us: 10, stream: Some(1), kind: EventKind::Admit });
/// recorder.record(ObsEvent { t_us: 25, stream: Some(1), kind: EventKind::Finish { generated: 4 } });
/// let lifecycle = recorder.stream_events(1);
/// assert_eq!(lifecycle.len(), 2);
/// assert_eq!(lifecycle[0].kind, EventKind::Admit);
/// ```
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(RecorderInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Appends one event, evicting the oldest if the ring is full.
    pub fn record(&self, event: ObsEvent) {
        let mut inner = crate::lock_recover(&self.inner);
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
        inner.appended += 1;
    }

    /// Largest number of events the ring holds.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        crate::lock_recover(&self.inner).ring.len()
    }

    /// Whether no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever appended (including ones since evicted).
    #[must_use]
    pub fn appended(&self) -> u64 {
        crate::lock_recover(&self.inner).appended
    }

    /// Events evicted by ring wraparound; non-zero means the oldest part of a
    /// lifecycle may be missing from [`FlightRecorder::stream_events`].
    #[must_use]
    pub fn dropped(&self) -> u64 {
        crate::lock_recover(&self.inner).dropped
    }

    /// Snapshot of all held events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<ObsEvent> {
        crate::lock_recover(&self.inner)
            .ring
            .iter()
            .copied()
            .collect()
    }

    /// The held events correlated to `stream`, oldest first — a stream's
    /// reconstructed lifecycle.
    #[must_use]
    pub fn stream_events(&self, stream: u64) -> Vec<ObsEvent> {
        crate::lock_recover(&self.inner)
            .ring
            .iter()
            .filter(|e| e.stream == Some(stream))
            .copied()
            .collect()
    }

    /// Renders `stream`'s lifecycle as one line per event (see
    /// `docs/OBSERVABILITY.md` for how to read it).
    #[must_use]
    pub fn dump_stream(&self, stream: u64) -> String {
        use std::fmt::Write as _;
        let events = self.stream_events(stream);
        let mut out = format!("stream {stream}: {} events\n", events.len());
        for event in events {
            let _ = writeln!(out, "  {event}");
        }
        out
    }

    /// Discards all held events (counters are kept).
    pub fn clear(&self) {
        crate::lock_recover(&self.inner).ring.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(t_us: u64, stream: Option<u64>, kind: EventKind) -> ObsEvent {
        ObsEvent { t_us, stream, kind }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let recorder = FlightRecorder::new(3);
        for t in 0..5u64 {
            recorder.record(event(t, Some(t), EventKind::Admit));
        }
        assert_eq!(recorder.capacity(), 3);
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.appended(), 5);
        assert_eq!(recorder.dropped(), 2);
        // The survivors are the newest three, in order.
        let times: Vec<u64> = recorder.events().iter().map(|e| e.t_us).collect();
        assert_eq!(times, [2, 3, 4]);
        recorder.clear();
        assert!(recorder.is_empty());
        assert_eq!(recorder.dropped(), 2, "clear keeps the drop count");
    }

    #[test]
    fn correlation_ids_partition_the_stream_views() {
        let recorder = FlightRecorder::new(64);
        recorder.record(event(1, Some(7), EventKind::Offer { est_pages: 2 }));
        recorder.record(event(2, Some(9), EventKind::Offer { est_pages: 2 }));
        recorder.record(event(3, Some(7), EventKind::Admit));
        recorder.record(event(
            4,
            None,
            EventKind::BatchDispatch {
                requests: 2,
                rows: 2,
            },
        ));
        recorder.record(event(5, Some(7), EventKind::Finish { generated: 3 }));
        let seven = recorder.stream_events(7);
        assert_eq!(seven.len(), 3);
        assert!(seven.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert_eq!(recorder.stream_events(9).len(), 1);
        assert!(recorder.stream_events(8).is_empty());
        let dump = recorder.dump_stream(7);
        assert!(dump.contains("stream 7: 3 events"));
        assert!(dump.contains("offer"));
        assert!(dump.contains("finish (3 tokens)"));
    }

    #[test]
    fn event_labels_and_display_are_stable() {
        let kinds = [
            (EventKind::Offer { est_pages: 1 }, "offer"),
            (EventKind::Admit, "admit"),
            (EventKind::Queue, "queue"),
            (EventKind::Shed { retry_after_us: 9 }, "shed"),
            (EventKind::Activate, "activate"),
            (EventKind::ChunkDrain { rows: 4 }, "chunk_drain"),
            (EventKind::PrefixAttach { shared_rows: 8 }, "prefix_attach"),
            (EventKind::Preempt, "preempt"),
            (EventKind::Resume { reprefill_rows: 2 }, "resume"),
            (
                EventKind::PoolExhausted {
                    requested_pages: 3,
                    free_pages: 1,
                },
                "pool_exhausted",
            ),
            (
                EventKind::BatchDispatch {
                    requests: 1,
                    rows: 1,
                },
                "batch_dispatch",
            ),
            (
                EventKind::FaultInjected {
                    kind: FaultKind::SlowBatch,
                },
                "fault_injected",
            ),
            (EventKind::Finish { generated: 0 }, "finish"),
            (EventKind::Cancel, "cancel"),
            (EventKind::Place { group: 2 }, "place"),
            (
                EventKind::Migrate {
                    from_group: 0,
                    to_group: 3,
                },
                "migrate",
            ),
            (EventKind::PrefixEvict { rows: 16 }, "prefix_evict"),
        ];
        for (kind, label) in kinds {
            assert_eq!(kind.label(), label);
            let line = event(0, None, kind).to_string();
            assert!(line.contains(label), "{line} should mention {label}");
        }
        let line = event(12, Some(3), EventKind::Preempt).to_string();
        assert!(line.contains("stream 3"));
        assert!(line.contains("12 us"));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let recorder = FlightRecorder::new(0);
        recorder.record(event(1, None, EventKind::Admit));
        recorder.record(event(2, None, EventKind::Cancel));
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.events()[0].t_us, 2);
    }
}
