//! Subsampled statistics estimation (Eq. 4 and the subsampled mean of Section III-C).
//!
//! For the normalization layers whose ISD cannot be skipped, HAAN estimates the ISD
//! (and, for LayerNorm, the mean) from only the first `Nsub` elements of the input —
//! the truncation is a prefix so the hardware only reads the initial memory entries
//! (Fig. 7). This module provides the estimator together with error metrics used by
//! the ablation experiments.

use crate::error::HaanError;
use haan_numerics::stats::{VectorStats, DEFAULT_EPS};

/// Subsampled mean / ISD estimator.
///
/// # Example
///
/// ```
/// use haan::SubsampleEstimator;
/// let estimator = SubsampleEstimator::new(256);
/// let xs: Vec<f32> = (0..4096).map(|i| ((i * 37 % 101) as f32 - 50.0) / 10.0).collect();
/// let estimate = estimator.estimate(&xs)?;
/// let exact = haan_numerics::stats::VectorStats::compute(&xs);
/// let rel = ((estimate.isd - exact.isd(1e-5)) / exact.isd(1e-5)).abs();
/// assert!(rel < 0.2);
/// # Ok::<(), haan::HaanError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubsampleEstimator {
    n_sub: usize,
}

/// Statistics estimated from a subsampled input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubsampledStats {
    /// Estimated mean (from the prefix).
    pub mean: f32,
    /// Estimated variance (from the prefix).
    pub variance: f32,
    /// Estimated inverse standard deviation.
    pub isd: f32,
    /// Estimated inverse RMS (the literal Eq. 4 quantity, used for RMSNorm).
    pub inverse_rms: f32,
    /// Number of elements actually used.
    pub used: usize,
}

impl SubsampleEstimator {
    /// Creates an estimator that uses the first `n_sub` elements.
    #[must_use]
    pub fn new(n_sub: usize) -> Self {
        Self { n_sub }
    }

    /// The configured subsample length.
    #[must_use]
    pub fn n_sub(&self) -> usize {
        self.n_sub
    }

    /// Estimates mean, variance, ISD and inverse RMS from the input prefix.
    ///
    /// # Errors
    ///
    /// Returns [`HaanError::InvalidConfig`] when the subsample length is zero and
    /// [`HaanError::Numeric`] for an empty input.
    pub fn estimate(&self, z: &[f32]) -> Result<SubsampledStats, HaanError> {
        if self.n_sub == 0 {
            return Err(HaanError::InvalidConfig(
                "subsample length must be at least 1".to_string(),
            ));
        }
        let stats = VectorStats::compute_subsampled(z, self.n_sub)?;
        Ok(SubsampledStats {
            mean: stats.mean,
            variance: stats.variance,
            isd: stats.isd(DEFAULT_EPS),
            inverse_rms: 1.0 / stats.rms(DEFAULT_EPS),
            used: stats.count,
        })
    }

    /// Relative ISD estimation error against the exact full-input ISD.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SubsampleEstimator::estimate`].
    pub fn isd_relative_error(&self, z: &[f32]) -> Result<f64, HaanError> {
        let estimate = self.estimate(z)?;
        let exact = VectorStats::try_compute(z)
            .map_err(HaanError::from)?
            .isd(DEFAULT_EPS);
        Ok((f64::from(estimate.isd) - f64::from(exact)).abs() / f64::from(exact))
    }

    /// The fraction of the input that is actually read (`min(Nsub, N) / N`), which is
    /// what drives the hardware's latency/power savings.
    #[must_use]
    pub fn read_fraction(&self, input_len: usize) -> f64 {
        if input_len == 0 {
            return 0.0;
        }
        self.n_sub.min(input_len) as f64 / input_len as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_input(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len)
            .map(|_| {
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen_range(0.0f32..1.0);
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
            })
            .collect()
    }

    #[test]
    fn prefix_only_is_used() {
        let mut xs = vec![1.0f32; 128];
        for v in xs.iter_mut().skip(64) {
            *v = 1000.0;
        }
        let stats = SubsampleEstimator::new(64).estimate(&xs).unwrap();
        assert_eq!(stats.used, 64);
        assert!((stats.mean - 1.0).abs() < 1e-6);
    }

    #[test]
    fn longer_subsamples_are_more_accurate_on_average() {
        let mut err_small = 0.0;
        let mut err_large = 0.0;
        for seed in 0..20 {
            let xs = gaussian_input(4096, seed);
            err_small += SubsampleEstimator::new(64).isd_relative_error(&xs).unwrap();
            err_large += SubsampleEstimator::new(1024)
                .isd_relative_error(&xs)
                .unwrap();
        }
        assert!(
            err_large < err_small,
            "large {err_large} vs small {err_small}"
        );
    }

    #[test]
    fn full_length_subsample_is_exact() {
        let xs = gaussian_input(512, 3);
        let err = SubsampleEstimator::new(512)
            .isd_relative_error(&xs)
            .unwrap();
        assert!(err < 1e-6);
        let err_clamped = SubsampleEstimator::new(10_000)
            .isd_relative_error(&xs)
            .unwrap();
        assert!(err_clamped < 1e-6);
    }

    #[test]
    fn paper_subsample_lengths_keep_error_small() {
        // LLaMA-7B uses Nsub = 256 of a 4096-wide input; the estimation error of the ISD
        // stays in the few-percent range for Gaussian-like activations.
        let mut worst: f64 = 0.0;
        for seed in 0..10 {
            let xs = gaussian_input(4096, 100 + seed);
            worst = worst.max(
                SubsampleEstimator::new(256)
                    .isd_relative_error(&xs)
                    .unwrap(),
            );
        }
        assert!(worst < 0.2, "worst-case relative error {worst}");
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let xs = gaussian_input(64, 1);
        assert!(SubsampleEstimator::new(0).estimate(&xs).is_err());
        assert!(SubsampleEstimator::new(16).estimate(&[]).is_err());
    }

    #[test]
    fn read_fraction_reflects_truncation() {
        let estimator = SubsampleEstimator::new(256);
        assert!((estimator.read_fraction(4096) - 256.0 / 4096.0).abs() < 1e-12);
        assert_eq!(estimator.read_fraction(128), 1.0);
        assert_eq!(estimator.read_fraction(0), 0.0);
        assert_eq!(estimator.n_sub(), 256);
    }

    #[test]
    fn inverse_rms_matches_eq4_on_zero_mean_data() {
        let xs = [2.0f32, -2.0, 2.0, -2.0, 2.0, -2.0, 2.0, -2.0];
        let stats = SubsampleEstimator::new(8).estimate(&xs).unwrap();
        // RMS is 2, so inverse RMS is 0.5; the ISD matches because the mean is zero.
        assert!((stats.inverse_rms - 0.5).abs() < 1e-4);
        assert!((stats.isd - 0.5).abs() < 1e-4);
    }

    proptest! {
        #[test]
        fn prop_estimates_are_finite_and_positive(
            xs in proptest::collection::vec(-100.0f32..100.0, 4..512),
            n_sub in 1usize..600,
        ) {
            let stats = SubsampleEstimator::new(n_sub).estimate(&xs).unwrap();
            prop_assert!(stats.isd.is_finite() && stats.isd > 0.0);
            prop_assert!(stats.inverse_rms.is_finite() && stats.inverse_rms > 0.0);
            prop_assert!(stats.used <= xs.len());
            prop_assert!(stats.used <= n_sub);
        }
    }
}
