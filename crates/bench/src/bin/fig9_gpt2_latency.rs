//! Figure 9: normalized latency of HAAN-v1/v2 vs SOLE, DFX, MHAA and the GPU on the
//! GPT2-1.5B normalization workload across sequence lengths 128-1024.
//!
//! Per the paper's GPT-2 setup, 10 normalization layers are skipped and the input is
//! subsampled to half its length.

use haan::{HaanConfig, SkipPlan};
use haan_accel::{AccelConfig, HaanAccelerator};
use haan_baselines::{
    compare_engines, DfxEngine, GpuNormEngine, MhaaEngine, NormEngine, NormWorkload, SoleEngine,
};
use haan_bench::{fmt_ratio, print_experiment_header, MarkdownTable};
use haan_numerics::Format;

fn gpt2_plan() -> SkipPlan {
    SkipPlan {
        start: 85,
        end: 95,
        decay: -0.035,
        correlation: -0.999,
        calibration_anchor_log_isd: -1.5,
    }
}

fn gpt2_algorithm() -> HaanConfig {
    HaanConfig::builder()
        .label("HAAN (GPT-2)")
        .subsample(800)
        .format(Format::Fp16)
        .build()
}

fn main() {
    print_experiment_header(
        "Figure 9",
        "normalized normalization latency on GPT2-1.5B (97 layers, E = 1600)",
    );
    let v1 = HaanAccelerator::new(AccelConfig::haan_v1(), gpt2_algorithm()).with_plan(gpt2_plan());
    let v2 = HaanAccelerator::new(AccelConfig::haan_v2(), gpt2_algorithm()).with_plan(gpt2_plan());
    let sole = SoleEngine::default();
    let dfx = DfxEngine::default();
    let mhaa = MhaaEngine::default();
    let gpu = GpuNormEngine::a100();

    let mut table = MarkdownTable::new(vec![
        "seq len", "HAAN-v1", "HAAN-v2", "SOLE", "MHAA", "DFX", "GPU",
    ]);
    for seq_len in [128usize, 256, 512, 1024] {
        let workload = NormWorkload::gpt2_1_5b(seq_len);
        let others: [&dyn NormEngine; 5] = [&v2, &sole, &mhaa, &dfx, &gpu];
        let rows = compare_engines(&v1, &others, &workload);
        table.push_row(vec![
            seq_len.to_string(),
            fmt_ratio(rows[0].normalized_latency),
            fmt_ratio(rows[1].normalized_latency),
            fmt_ratio(rows[2].normalized_latency),
            fmt_ratio(rows[3].normalized_latency),
            fmt_ratio(rows[4].normalized_latency),
            fmt_ratio(rows[5].normalized_latency),
        ]);
    }
    print!("{}", table.render());
    println!("\nPaper reference (averages): HAAN-v2 ≈ 1.03-1.05x, SOLE ≈ 1.21-1.35x, MHAA ≈ 2.42x, DFX ≈ 11.7x, GPU ≈ 10.5x.");
    println!(
        "Absolute HAAN-v1 latency at seq 512: {:.1} us",
        v1.latency_us(&NormWorkload::gpt2_1_5b(512))
    );
}
