//! Property tests of the refcounted K/V block pool under arbitrary
//! fork/append/truncate/clear/drop interleavings (the primitives behind
//! prefix sharing, preemption parking, and resume).
//!
//! The pool enforces its own safety invariants with panics — `release_pages`
//! panics on a double-free, `write_rows` panics on a write to a page with
//! refcount > 1 — so simply *surviving* a random op stream proves the
//! copy-on-write append and the fork/truncate bookkeeping never release a page
//! twice and never mutate a shared page. On top of that, after every op the
//! pool's telemetry must be reproducible from the live page tables alone:
//!
//! * `pages_in_use` = number of **distinct** pages across all live tables
//!   (shared pages count once — that is the whole point of sharing);
//! * every live page's `page_refcount` = the number of tables holding it;
//! * `bytes_materialized` = `pages_materialized × page_bytes`, monotone, and
//!   at least as large as the distinct live footprint.

use haan_llm::{KvBlockPool, Matrix, PagedKvCache};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const PAGE_ROWS: usize = 4;
const CAPACITY_ROWS: usize = 64;
const EMBED: usize = 4;
const MAX_CACHES: usize = 8;

/// Appends `rows` rows of distinct, call-unique values (all-or-nothing on
/// pool exhaustion, which the op stream treats as a legal no-op).
fn append_rows(cache: &mut PagedKvCache, rows: usize, stamp: &mut f32) -> bool {
    let mut data = Vec::with_capacity(rows * EMBED);
    for _ in 0..rows * EMBED {
        *stamp += 1.0;
        data.push(*stamp);
    }
    let keys = Matrix::from_vec(rows, EMBED, data.clone()).expect("shape");
    let values = Matrix::from_vec(rows, EMBED, data).expect("shape");
    cache.append(&keys, &values).is_ok()
}

/// Checks every telemetry invariant against the ground truth of the live
/// page tables.
fn check_invariants(pool: &Arc<KvBlockPool>, caches: &[PagedKvCache]) {
    let mut holders: HashMap<usize, u32> = HashMap::new();
    for cache in caches {
        assert_eq!(
            cache.page_table().len(),
            cache.len().div_ceil(PAGE_ROWS),
            "table length must cover exactly the cached rows"
        );
        for &page in cache.page_table() {
            *holders.entry(page).or_insert(0) += 1;
        }
    }
    assert_eq!(
        pool.pages_in_use(),
        holders.len(),
        "pages_in_use must count shared pages once"
    );
    for (&page, &count) in &holders {
        assert_eq!(
            pool.page_refcount(page),
            count,
            "page {page} refcount must equal its number of live holders"
        );
    }
    assert_eq!(
        pool.bytes_materialized(),
        pool.pages_materialized() * pool.page_bytes(),
        "materialized bytes must be reproducible from the page count"
    );
    assert!(
        pool.pages_materialized() >= holders.len(),
        "materialized pages can never undercount the live footprint"
    );
    assert!(pool.pages_in_use() <= pool.pages_total());
}

proptest! {
    #[test]
    fn arbitrary_fork_append_truncate_interleavings_keep_the_pool_consistent(
        ops in proptest::collection::vec((0u8..6, 0u8..8, 1u8..12), 1..40)
    ) {
        let pool = KvBlockPool::shared(CAPACITY_ROWS, PAGE_ROWS, EMBED);
        let mut caches = vec![PagedKvCache::new(Arc::clone(&pool))];
        let mut stamp = 0.0f32;
        let mut materialized_floor = 0usize;
        for (kind, which, amount) in ops {
            let index = which as usize % caches.len();
            match kind {
                // Append 1..=11 rows: exercises fresh pages, partial tails,
                // and the copy-on-write path when the tail page is shared.
                0 | 1 => {
                    let _ = append_rows(&mut caches[index], amount as usize, &mut stamp);
                }
                // Fork: the clone maps the same pages (no copy at fork time).
                2 => {
                    if caches.len() < MAX_CACHES {
                        let before = pool.bytes_materialized();
                        let fork = caches[index].fork();
                        prop_assert_eq!(fork.len(), caches[index].len());
                        prop_assert_eq!(
                            pool.bytes_materialized(),
                            before,
                            "fork must not materialize anything"
                        );
                        caches.push(fork);
                    }
                }
                // Truncate to an arbitrary smaller length (a preemption or
                // rollback): drops only this cache's references.
                3 => {
                    let len = caches[index].len();
                    caches[index].truncate(len.saturating_sub(amount as usize));
                }
                // Clear (a park): releases every reference this cache holds.
                4 => caches[index].clear(),
                // Drop the cache entirely (stream teardown).
                _ => {
                    if caches.len() > 1 {
                        caches.swap_remove(index);
                    }
                }
            }
            prop_assert!(
                pool.pages_materialized() >= materialized_floor,
                "materialization is monotone (pages are recycled, not unmapped)"
            );
            materialized_floor = pool.pages_materialized();
            check_invariants(&pool, &caches);
        }
        // Teardown: every reference drains and the pool reads empty.
        caches.clear();
        assert_eq!(pool.pages_in_use(), 0, "all pages must return to the pool");
        assert_eq!(pool.bytes_in_use(), 0);
    }

    #[test]
    fn forked_caches_diverge_without_ever_sharing_written_pages(
        seed_rows in 1usize..24, grow_a in 1usize..12, grow_b in 1usize..12
    ) {
        let pool = KvBlockPool::shared(CAPACITY_ROWS, PAGE_ROWS, EMBED);
        let mut stamp = 0.0f32;
        let mut a = PagedKvCache::new(Arc::clone(&pool));
        prop_assert!(append_rows(&mut a, seed_rows, &mut stamp));
        let mut b = a.fork();
        let shared_pages = pool.pages_in_use();
        // Divergent appends: each side may copy-on-write the shared tail page
        // (refcount 2 → each writer gets a private replacement) but must keep
        // every full shared page mapped by both.
        prop_assert!(append_rows(&mut a, grow_a, &mut stamp));
        prop_assert!(append_rows(&mut b, grow_b, &mut stamp));
        let full_shared = seed_rows / PAGE_ROWS;
        for page_index in 0..full_shared {
            prop_assert_eq!(
                a.page_table()[page_index],
                b.page_table()[page_index],
                "full prefix pages stay shared after divergence"
            );
            prop_assert_eq!(pool.page_refcount(a.page_table()[page_index]), 2);
        }
        if seed_rows % PAGE_ROWS != 0 {
            prop_assert!(
                a.page_table()[full_shared] != b.page_table()[full_shared],
                "a divergent partial tail must have been copied, not shared"
            );
        }
        prop_assert!(shared_pages <= pool.pages_in_use());
        check_invariants(&pool, &[a, b]);
    }
}
