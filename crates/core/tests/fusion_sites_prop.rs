//! Property tests of the fusion-site request shapes: random shapes, site kinds,
//! skip plans, formats and backends through [`HaanNormalizer`]'s fused
//! residual+norm and norm+matmul-epilogue entry points, checked against the
//! scalar composition oracle.
//!
//! Tolerances mirror `tests/backend_dispatch.rs` at the repository root:
//!
//! * fused vs the backend's **own composed path** (`fusion(false)`): bit-identical,
//!   including the returned [`AnchorState`] at anchor sites;
//! * fused software backends vs the **scalar oracle**: ≤ 1e-5 relative on
//!   normalized rows, ≤ 1e-4 after a matmul consumer (the reduction accumulates
//!   the per-element statistics difference);
//! * the parallel backend vs the fused backend: bit-identical for any worker
//!   count (row kernels are independent).

use haan::{BackendSelection, HaanConfig, HaanNormalizer, ParallelPolicy, SkipPlan};
use haan_llm::norm::{NormSite, Normalizer};
use haan_llm::{Matrix, NormKind};
use haan_numerics::Format;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix from a seed (the shim's strategies sample
/// independently, so data is derived from a sampled seed instead of a
/// shape-dependent `collection::vec`).
fn seeded_matrix(rows: usize, cols: usize, seed: u64, scale: f32) -> Matrix {
    let mut state = seed | 1;
    let data: Vec<f32> = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 23) as f32 - 1.0) * scale
        })
        .collect();
    Matrix::from_vec(rows, cols, data).expect("consistent shape")
}

fn assert_close(a: &Matrix, b: &Matrix, tolerance: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!(
            (x - y).abs() <= tolerance * y.abs().max(1.0),
            "{what}: {x} vs {y}"
        );
    }
}

struct Case {
    kind: NormKind,
    backend: BackendSelection,
    format: Format,
    plan: Option<SkipPlan>,
    subsample: Option<usize>,
}

fn build(case: &Case, fusion: bool) -> HaanNormalizer {
    let mut builder = HaanConfig::builder()
        .format(case.format)
        .backend(case.backend)
        .fusion(fusion);
    if case.backend == BackendSelection::Parallel {
        builder = builder.parallel(ParallelPolicy::Threads(3));
    }
    if let Some(n_sub) = case.subsample {
        builder = builder.subsample(n_sub);
    }
    let normalizer = HaanNormalizer::new(builder.build());
    match case.plan {
        Some(plan) => normalizer.with_plan(plan),
        None => normalizer,
    }
}

/// One anchor-then-skipped sequence through both fused request shapes,
/// returning `(summed, normed, epilogue outs, anchor row count)`.
fn run_sequence(
    normalizer: &mut HaanNormalizer,
    case: &Case,
    input: &Matrix,
    residual: &Matrix,
    gamma: &[f32],
    beta: &[f32],
    weights: &[&Matrix],
) -> (Matrix, Matrix, Vec<Matrix>) {
    normalizer.begin_sequence();
    let (rows, cols) = input.shape();
    let mut summed = Matrix::zeros(rows, cols);
    let mut normed = Matrix::zeros(rows, cols);
    normalizer.normalize_residual_into(
        NormSite {
            layer_index: 0,
            kind: case.kind,
        },
        input,
        residual,
        gamma,
        beta,
        &mut summed,
        &mut normed,
    );
    let mut outs: Vec<Matrix> = weights
        .iter()
        .map(|w| Matrix::zeros(rows, w.cols()))
        .collect();
    normalizer
        .normalize_matmul_into(
            NormSite {
                layer_index: 1,
                kind: case.kind,
            },
            input,
            gamma,
            beta,
            weights,
            &mut outs,
        )
        .expect("valid consumer shapes");
    (summed, normed, outs)
}

proptest! {
    #[test]
    fn prop_fused_sites_match_their_composed_path_and_the_scalar_oracle(
        rows in 1usize..7,
        cols in 1usize..140,
        seed in 1u64..u64::MAX,
        picks in (0usize..2, 0usize..2, 0usize..3, 0usize..4),
        consumer_cols in proptest::collection::vec(1usize..40, 1..4),
    ) {
        let (kind_pick, backend_pick, format_pick, site_pick) = picks;
        let case = Case {
            kind: if kind_pick == 0 { NormKind::LayerNorm } else { NormKind::RmsNorm },
            backend: if backend_pick == 0 {
                BackendSelection::Fused
            } else {
                BackendSelection::Parallel
            },
            format: [Format::Fp32, Format::Fp16, Format::Int8][format_pick],
            // Skip plans and subsampling are drawn from the same pick: each
            // combination of {plain, skipped, subsampled, both} occurs.
            plan: (site_pick % 2 == 1).then_some(SkipPlan {
                start: 1,
                end: 2,
                decay: -0.04,
                correlation: -1.0,
                calibration_anchor_log_isd: -0.3,
            }),
            subsample: (site_pick >= 2).then_some(cols.div_ceil(2)),
        };
        let input = seeded_matrix(rows, cols, seed, 2.0);
        let residual = seeded_matrix(rows, cols, seed.rotate_left(17), 1.5);
        let gamma: Vec<f32> = (0..cols).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
        let beta: Vec<f32> = (0..cols).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();
        let weights: Vec<Matrix> = consumer_cols
            .iter()
            .enumerate()
            .map(|(i, &n)| seeded_matrix(cols, n, seed.rotate_left(23 + i as u32), 0.5))
            .collect();
        let weight_refs: Vec<&Matrix> = weights.iter().collect();

        // Fused vs the same backend's composed path: bit-identical, anchors included.
        let mut fused = build(&case, true);
        let mut composed = build(&case, false);
        let fused_out = run_sequence(&mut fused, &case, &input, &residual, &gamma, &beta, &weight_refs);
        let composed_out =
            run_sequence(&mut composed, &case, &input, &residual, &gamma, &beta, &weight_refs);
        prop_assert_eq!(&fused_out.0, &composed_out.0, "summed stream diverged");
        prop_assert_eq!(&fused_out.1, &composed_out.1, "normalized rows diverged");
        prop_assert_eq!(&fused_out.2, &composed_out.2, "epilogue outputs diverged");
        prop_assert_eq!(fused.anchor_state(), composed.anchor_state());
        prop_assert_eq!(fused.telemetry(), composed.telemetry());

        // Fused software backend vs the scalar composition oracle.
        let oracle_case = Case { backend: BackendSelection::Scalar, ..case };
        let mut oracle = build(&oracle_case, false);
        let oracle_out =
            run_sequence(&mut oracle, &oracle_case, &input, &residual, &gamma, &beta, &weight_refs);
        prop_assert_eq!(&fused_out.0, &oracle_out.0, "sums must be exact on every backend");
        assert_close(&fused_out.1, &oracle_out.1, 1e-5, "fused residual+norm vs scalar oracle");
        for (fused_c, oracle_c) in fused_out.2.iter().zip(&oracle_out.2) {
            assert_close(fused_c, oracle_c, 1e-4, "fused epilogue vs scalar oracle");
        }
    }

    #[test]
    fn prop_parallel_is_bit_identical_to_fused_for_any_worker_count(
        rows in 1usize..9,
        cols in 1usize..140,
        seed in 1u64..u64::MAX,
        threads in 2usize..6,
        kind_pick in 0usize..2,
    ) {
        let kind = if kind_pick == 0 { NormKind::LayerNorm } else { NormKind::RmsNorm };
        let case = |backend| Case {
            kind,
            backend,
            format: Format::Fp32,
            plan: None,
            subsample: None,
        };
        let input = seeded_matrix(rows, cols, seed, 2.0);
        let residual = seeded_matrix(rows, cols, seed.rotate_left(29), 1.0);
        let gamma = vec![1.0f32; cols];
        let beta = vec![0.0f32; cols];
        let weights = [seeded_matrix(cols, 11, seed.rotate_left(37), 0.5)];
        let weight_refs: Vec<&Matrix> = weights.iter().collect();

        let fused_case = case(BackendSelection::Fused);
        let mut fused = build(&fused_case, true);
        let parallel_case = case(BackendSelection::Parallel);
        let mut parallel = HaanNormalizer::new(
            HaanConfig::builder()
                .format(Format::Fp32)
                .backend(BackendSelection::Parallel)
                .parallel(ParallelPolicy::Threads(threads))
                .fusion(true)
                .build(),
        );
        let fused_out =
            run_sequence(&mut fused, &fused_case, &input, &residual, &gamma, &beta, &weight_refs);
        let parallel_out = run_sequence(
            &mut parallel,
            &parallel_case,
            &input,
            &residual,
            &gamma,
            &beta,
            &weight_refs,
        );
        prop_assert_eq!(fused_out.0, parallel_out.0);
        prop_assert_eq!(fused_out.1, parallel_out.1);
        prop_assert_eq!(fused_out.2, parallel_out.2);
    }
}
