//! Figure 1(b): runtime breakdown of GPT-2 and OPT with and without inference
//! optimizations (FlashAttention + FP8 linear layers), at sequence length 2048.

use haan_bench::{fmt_pct, print_experiment_header, MarkdownTable};
use haan_llm::runtime::{GpuRuntimeModel, OpClass, OptimizationConfig};
use haan_llm::{ModelConfig, ModelFamily};

fn main() {
    print_experiment_header(
        "Figure 1(b)",
        "GPU runtime breakdown, original vs optimized (seq len 2048)",
    );
    let gpu = GpuRuntimeModel::a100();
    let seq_len = 2048;

    for config in [ModelConfig::gpt2_117m(), ModelConfig::opt_2_7b()] {
        println!("\n### {} ###", config.name);
        let mut table = MarkdownTable::new(vec![
            "configuration",
            "Matmul",
            "Softmax",
            "Normalization",
            "Others",
            "total (ms)",
        ]);
        for (label, opts) in [
            ("Original", OptimizationConfig::original()),
            ("After optimization", OptimizationConfig::optimized()),
        ] {
            let breakdown = gpu.breakdown(&config, seq_len, opts);
            let fractions = breakdown.fractions();
            table.push_row(vec![
                label.to_string(),
                fmt_pct(fractions[0]),
                fmt_pct(fractions[1]),
                fmt_pct(fractions[2]),
                fmt_pct(fractions[3]),
                format!("{:.2}", breakdown.total_ms()),
            ]);
        }
        // Paper reference rows.
        let family = config.family;
        if let (Some(original), Some(optimized)) = (
            GpuRuntimeModel::paper_original_shares(family),
            GpuRuntimeModel::paper_optimized_shares(family),
        ) {
            table.push_row(paper_row("Paper: Original", original));
            table.push_row(paper_row("Paper: After optimization", optimized));
        }
        print!("{}", table.render());
        let _ = family;
    }
    println!(
        "\nObservation: after FlashAttention + FP8 the normalization share grows from ~15-18% \
         to >33%, making LayerNorm the new bottleneck (the paper's motivation)."
    );
}

fn paper_row(label: &str, shares: [f64; 4]) -> Vec<String> {
    let mut row = vec![label.to_string()];
    row.extend(shares.iter().map(|s| fmt_pct(*s)));
    row.push("-".to_string());
    row
}

#[allow(dead_code)]
fn class_order() -> [OpClass; 4] {
    OpClass::ALL
}

#[allow(dead_code)]
fn families() -> [ModelFamily; 2] {
    [ModelFamily::Gpt2, ModelFamily::Opt]
}
