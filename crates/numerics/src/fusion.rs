//! Cross-operation fusion kernels: residual+statistics and norm+matmul-epilogue.
//!
//! The d-Matrix fusion paper observes that normalization around a transformer block
//! wastes memory bandwidth twice: the residual sum is written out and immediately
//! re-read to compute row statistics, and the normalized matrix is materialized only
//! to be streamed once into the adjacent matmul. The two kernels in this module close
//! both seams in software, and they are written so that the fused result is
//! **bit-identical** to the composed sequence they replace:
//!
//! * [`add_rows_stats_chunked`] computes `sum_out = a + b` elementwise while
//!   accumulating the same shift-centred, lane-parallel statistics as
//!   [`VectorStats::compute_chunked`] over the summed values — one traversal while the
//!   row is cache-hot instead of a write followed by a full re-read. Every float
//!   operation (the `a + b` add, the shift, the lane assignment, the pairwise lane
//!   tree, the health check, the one-pass fallback) matches the composed
//!   `add`-then-`compute_chunked` sequence exactly.
//! * [`norm_matmul_epilogue_into`] multiplies the *normalized* rows of `data` by a
//!   weight matrix without ever materializing the normalized matrix: each reduction
//!   panel is normalized once into a hot 64-wide buffer (the exact
//!   [`apply_norm_into`] expressions) and swept across the output tiles. Because every
//!   output element still accumulates its `k` terms in ascending order — the same
//!   order as [`matmul_rows_into`] — the fused product is bit-identical to
//!   normalize-then-matmul.
//! * [`matmul_rows_into`] is the plain cache-blocked slice matmul used as the composed
//!   half of the parity oracle. It reproduces the accumulation order of the transformer
//!   substrate's `Matrix::matmul_into` (ascending `k` per output element), so oracles
//!   built from it agree bit-for-bit with the block's unfused path.

use crate::error::NumericError;
use crate::stats::{
    apply_norm_into, check_len, RowNormMode, VectorStats, CHUNK_BLOCK, CHUNK_LANES,
};

/// Reduction/output tile width of the blocked matmul kernels.
///
/// Chosen to match the transformer substrate's `Matrix` kernel tile; the value only
/// affects performance, not results — per output element both kernels accumulate the
/// reduction in ascending `k` order regardless of the tile width.
const MATMUL_BLOCK: usize = 64;

/// Hot lane loop of [`add_rows_stats_chunked`]: sums the whole-chunk portion of one
/// block elementwise into `chunks_s` while accumulating the shifted statistics lanes.
///
/// `#[inline(never)]` with by-value accumulators for the same reason as
/// `stats::accumulate_lanes`: isolated, LLVM keeps the fixed-shape
/// `[f32; CHUNK_LANES]` loop packed; inlined next to the remainder/reduction-tree
/// code it is SLP-scalarized. Identical per-lane operation order, bit-identical
/// results.
#[inline(never)]
fn add_accumulate_lanes(
    chunks_a: &[[f32; CHUNK_LANES]],
    chunks_b: &[[f32; CHUNK_LANES]],
    chunks_s: &mut [[f32; CHUNK_LANES]],
    shift: f32,
    mut sum_lanes: [f32; CHUNK_LANES],
    mut sq_lanes: [f32; CHUNK_LANES],
) -> ([f32; CHUNK_LANES], [f32; CHUNK_LANES]) {
    for ((ca, cb), cs) in chunks_a.iter().zip(chunks_b).zip(chunks_s) {
        for lane in 0..CHUNK_LANES {
            let s = ca[lane] + cb[lane];
            cs[lane] = s;
            let d = s - shift;
            sum_lanes[lane] += d;
            sq_lanes[lane] += d * d;
        }
    }
    (sum_lanes, sq_lanes)
}

/// Fused residual add + chunked row statistics: writes `sum_out[i] = a[i] + b[i]` and
/// returns the [`VectorStats::compute_chunked`] statistics of the summed row, in one
/// traversal.
///
/// Bit-identical to the composed sequence
/// `for i { sum_out[i] = a[i] + b[i] }; VectorStats::compute_chunked(sum_out)`:
/// the shift is the first summed element, the lane/block accumulation structure is the
/// same, and unhealthy accumulators fall back to
/// [`VectorStats::compute_one_pass`] over the (already written) summed row exactly like
/// the composed kernel does.
///
/// # Errors
///
/// Returns [`NumericError::EmptyInput`] for empty rows and
/// [`NumericError::LengthMismatch`] when `b` or `sum_out` disagree with `a` in length.
pub fn add_rows_stats_chunked(
    a: &[f32],
    b: &[f32],
    sum_out: &mut [f32],
) -> Result<VectorStats, NumericError> {
    check_len("residual", a.len(), b.len())?;
    check_len("sum_out", a.len(), sum_out.len())?;
    if a.is_empty() {
        return Err(NumericError::EmptyInput);
    }
    let shift = a[0] + b[0];
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    for ((block_a, block_b), block_s) in a
        .chunks(CHUNK_BLOCK)
        .zip(b.chunks(CHUNK_BLOCK))
        .zip(sum_out.chunks_mut(CHUNK_BLOCK))
    {
        let (chunks_a, rem_a) = block_a.as_chunks::<CHUNK_LANES>();
        let (chunks_b, rem_b) = block_b.as_chunks::<CHUNK_LANES>();
        let (chunks_s, rem_s) = block_s.as_chunks_mut::<CHUNK_LANES>();
        let (mut sum_lanes, mut sq_lanes) = add_accumulate_lanes(
            chunks_a,
            chunks_b,
            chunks_s,
            shift,
            [0.0; CHUNK_LANES],
            [0.0; CHUNK_LANES],
        );
        for (lane, ((&va, &vb), vs)) in rem_a.iter().zip(rem_b).zip(rem_s).enumerate() {
            let s = va + vb;
            *vs = s;
            let d = s - shift;
            sum_lanes[lane] += d;
            sq_lanes[lane] += d * d;
        }
        // Pairwise lane reduction keeps the tree shape deterministic.
        let mut width = CHUNK_LANES / 2;
        while width > 0 {
            for lane in 0..width {
                sum_lanes[lane] += sum_lanes[lane + width];
                sq_lanes[lane] += sq_lanes[lane + width];
            }
            width /= 2;
        }
        sum += f64::from(sum_lanes[0]);
        sum_sq += f64::from(sq_lanes[0]);
    }
    // Same disqualification rule as `compute_chunked`; the summed row is fully
    // written at this point, so the exact fallback sees the same values the composed
    // sequence would.
    let healthy =
        sum.is_finite() && sum_sq.is_finite() && (sum_sq >= 1e-30 || (sum_sq == 0.0 && sum == 0.0));
    if !healthy {
        return VectorStats::compute_one_pass(sum_out);
    }
    let n = a.len() as f64;
    let shifted_mean = sum / n;
    let variance = (sum_sq / n - shifted_mean * shifted_mean).max(0.0);
    Ok(VectorStats {
        mean: (f64::from(shift) + shifted_mean) as f32,
        variance: variance as f32,
        count: a.len(),
    })
}

/// Cache-blocked row-major matmul over raw slices: `out = a × b`, with `a` of shape
/// `rows × a_cols` and `b` of shape `a_cols × b_cols`.
///
/// Reproduces the accumulation order of the transformer substrate's
/// `Matrix::matmul_into` — per output element the reduction terms are added in
/// ascending `k` order — so composed normalize-then-matmul oracles built from this
/// kernel are bit-identical to the block's unfused path.
///
/// # Errors
///
/// Returns [`NumericError::LengthMismatch`] when `a` is not a whole number of rows or
/// when `b` / `out` disagree with the implied shapes, and [`NumericError::EmptyInput`]
/// when `a_cols` is zero while `a` is non-empty.
pub fn matmul_rows_into(
    a: &[f32],
    a_cols: usize,
    b: &[f32],
    b_cols: usize,
    out: &mut [f32],
) -> Result<(), NumericError> {
    if a_cols == 0 {
        return if a.is_empty() && b.is_empty() && out.is_empty() {
            Ok(())
        } else {
            Err(NumericError::EmptyInput)
        };
    }
    if !a.len().is_multiple_of(a_cols) {
        return Err(NumericError::LengthMismatch {
            what: "a",
            expected: a.len().div_ceil(a_cols) * a_cols,
            actual: a.len(),
        });
    }
    let rows = a.len() / a_cols;
    check_len("b", a_cols * b_cols, b.len())?;
    check_len("out", rows * b_cols, out.len())?;
    out.fill(0.0);
    for jj in (0..b_cols).step_by(MATMUL_BLOCK) {
        let j_end = (jj + MATMUL_BLOCK).min(b_cols);
        for kk in (0..a_cols).step_by(MATMUL_BLOCK) {
            let k_end = (kk + MATMUL_BLOCK).min(a_cols);
            for i in 0..rows {
                let a_panel = &a[i * a_cols + kk..i * a_cols + k_end];
                let out_tile = &mut out[i * b_cols + jj..i * b_cols + j_end];
                let rhs_panel = b[kk * b_cols..k_end * b_cols].chunks_exact(b_cols);
                for (&av, rhs_row) in a_panel.iter().zip(rhs_panel) {
                    for (o, &bv) in out_tile.iter_mut().zip(&rhs_row[jj..j_end]) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Norm+matmul epilogue: multiplies the normalized rows of `data` by `weights`
/// (`cols × n`, row-major) into `out` (`rows × n`) without materializing the
/// normalized matrix.
///
/// Per-row statistics arrive precomputed in `means` / `isds` (the HAAN policy layer —
/// subsampling, quantized statistics, skip prediction — decides them). Each row is
/// normalized once into a single cache-hot `cols`-wide buffer with the exact
/// [`apply_norm_into`] expressions and immediately multiplied against the weights, so
/// the `rows × cols` normalized intermediate never touches memory: the live
/// intermediate is one row, and the input is streamed row-major exactly once. The
/// reduction still accumulates in ascending `k` order per output element, which makes
/// the result bit-identical to [`apply_norm_into`]-then-[`matmul_rows_into`].
///
/// # Errors
///
/// Returns [`NumericError::LengthMismatch`] when any buffer disagrees with the implied
/// shapes and [`NumericError::EmptyInput`] when `cols` is zero while `data` is
/// non-empty.
#[allow(clippy::too_many_arguments)]
pub fn norm_matmul_epilogue_into(
    data: &[f32],
    cols: usize,
    gamma: &[f32],
    beta: &[f32],
    mode: RowNormMode,
    means: &[f32],
    isds: &[f32],
    weights: &[f32],
    n: usize,
    out: &mut [f32],
) -> Result<(), NumericError> {
    if cols == 0 {
        return if data.is_empty() && weights.is_empty() && out.is_empty() {
            Ok(())
        } else {
            Err(NumericError::EmptyInput)
        };
    }
    if !data.len().is_multiple_of(cols) {
        return Err(NumericError::LengthMismatch {
            what: "data",
            expected: data.len().div_ceil(cols) * cols,
            actual: data.len(),
        });
    }
    let rows = data.len() / cols;
    check_len("gamma", cols, gamma.len())?;
    check_len("beta", cols, beta.len())?;
    check_len("means", rows, means.len())?;
    check_len("isds", rows, isds.len())?;
    check_len("weights", cols * n, weights.len())?;
    check_len("out", rows * n, out.len())?;
    out.fill(0.0);
    // One cache-hot row is the only normalized intermediate that ever exists —
    // this is the fusion: the γβ apply feeds the matmul straight out of cache
    // while `data` streams through row-major exactly once, and the weight
    // panels stay resident across rows.
    let mut row_buf = vec![0.0f32; cols];
    for i in 0..rows {
        apply_norm_into(
            &data[i * cols..(i + 1) * cols],
            gamma,
            beta,
            mode,
            means[i],
            isds[i],
            &mut row_buf,
        )?;
        let out_row = &mut out[i * n..(i + 1) * n];
        for jj in (0..n).step_by(MATMUL_BLOCK) {
            let j_end = (jj + MATMUL_BLOCK).min(n);
            for kk in (0..cols).step_by(MATMUL_BLOCK) {
                let k_end = (kk + MATMUL_BLOCK).min(cols);
                let out_tile = &mut out_row[jj..j_end];
                let rhs_panel = weights[kk * n..k_end * n].chunks_exact(n);
                for (&av, rhs_row) in row_buf[kk..k_end].iter().zip(rhs_panel) {
                    for (o, &bv) in out_tile.iter_mut().zip(&rhs_row[jj..j_end]) {
                        *o += av * bv;
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DEFAULT_EPS;

    const EDGE_LENGTHS: [usize; 8] = [1, 2, 7, 8, 9, 13, 127, 300];

    fn varied_row(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| (((i * 2_654_435_761) % 1000) as f32 / 250.0 - 2.0) * scale)
            .collect()
    }

    #[test]
    fn fused_add_stats_is_bit_identical_to_add_then_chunked() {
        for &len in &EDGE_LENGTHS {
            for &scale in &[1.0f32, 1e-3, 1e3] {
                let a = varied_row(len, scale);
                let b = varied_row(len, scale * 0.5);
                let mut fused_sum = vec![0.0f32; len];
                let fused = add_rows_stats_chunked(&a, &b, &mut fused_sum).unwrap();

                let composed_sum: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
                let composed = VectorStats::compute_chunked(&composed_sum).unwrap();

                assert_eq!(fused_sum, composed_sum, "len {len} scale {scale}");
                assert_eq!(fused.mean.to_bits(), composed.mean.to_bits());
                assert_eq!(fused.variance.to_bits(), composed.variance.to_bits());
                assert_eq!(fused.count, composed.count);
            }
        }
    }

    #[test]
    fn fused_add_stats_subnormal_rows_take_the_exact_fallback_identically() {
        // Squares of ~1e-38-scale deviations vanish in f32, tripping the health check
        // in both the fused and the composed kernel; the fallbacks must agree too.
        for &len in &EDGE_LENGTHS {
            let a = varied_row(len, 1e-38);
            let b = varied_row(len, 0.5e-38);
            let mut fused_sum = vec![0.0f32; len];
            let fused = add_rows_stats_chunked(&a, &b, &mut fused_sum).unwrap();

            let composed_sum: Vec<f32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
            let composed = VectorStats::compute_chunked(&composed_sum).unwrap();

            assert_eq!(fused_sum, composed_sum);
            assert_eq!(fused.mean.to_bits(), composed.mean.to_bits());
            assert_eq!(fused.variance.to_bits(), composed.variance.to_bits());
        }
    }

    #[test]
    fn fused_add_stats_rejects_mismatched_lengths_and_empty_rows() {
        let mut sum = [0.0f32; 2];
        assert!(matches!(
            add_rows_stats_chunked(&[1.0, 2.0], &[1.0], &mut sum),
            Err(NumericError::LengthMismatch {
                what: "residual",
                ..
            })
        ));
        assert!(matches!(
            add_rows_stats_chunked(&[1.0, 2.0], &[1.0, 2.0], &mut sum[..1]),
            Err(NumericError::LengthMismatch {
                what: "sum_out",
                ..
            })
        ));
        let mut empty: [f32; 0] = [];
        assert!(matches!(
            add_rows_stats_chunked(&[], &[], &mut empty),
            Err(NumericError::EmptyInput)
        ));
    }

    #[test]
    fn slice_matmul_matches_the_naive_product() {
        let (rows, cols, n) = (3, 70, 65);
        let a = varied_row(rows * cols, 1.0);
        let b = varied_row(cols * n, 0.1);
        let mut out = vec![0.0f32; rows * n];
        matmul_rows_into(&a, cols, &b, n, &mut out).unwrap();
        for i in 0..rows {
            for j in 0..n {
                let exact: f64 = (0..cols)
                    .map(|k| f64::from(a[i * cols + k]) * f64::from(b[k * n + j]))
                    .sum();
                assert!(
                    (f64::from(out[i * n + j]) - exact).abs() < 1e-3,
                    "({i},{j}): {} vs {exact}",
                    out[i * n + j]
                );
            }
        }
    }

    #[test]
    fn epilogue_is_bit_identical_to_normalize_then_matmul() {
        for &(rows, cols, n) in &[
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (2, 64, 64),
            (4, 127, 33),
        ] {
            for mode in [RowNormMode::LayerNorm, RowNormMode::RmsNorm] {
                let data = varied_row(rows * cols, 1.0);
                let gamma = varied_row(cols, 0.3);
                let beta = varied_row(cols, 0.1);
                let weights = varied_row(cols * n, 0.2);
                let mut means = vec![0.0f32; rows];
                let mut isds = vec![0.0f32; rows];
                for r in 0..rows {
                    let stats =
                        VectorStats::compute_chunked(&data[r * cols..(r + 1) * cols]).unwrap();
                    means[r] = stats.mean;
                    isds[r] = match mode {
                        RowNormMode::LayerNorm => stats.isd(DEFAULT_EPS),
                        RowNormMode::RmsNorm => 1.0 / stats.rms(DEFAULT_EPS),
                    };
                }

                let mut fused = vec![0.0f32; rows * n];
                norm_matmul_epilogue_into(
                    &data, cols, &gamma, &beta, mode, &means, &isds, &weights, n, &mut fused,
                )
                .unwrap();

                let mut normed = vec![0.0f32; rows * cols];
                for r in 0..rows {
                    apply_norm_into(
                        &data[r * cols..(r + 1) * cols],
                        &gamma,
                        &beta,
                        mode,
                        means[r],
                        isds[r],
                        &mut normed[r * cols..(r + 1) * cols],
                    )
                    .unwrap();
                }
                let mut composed = vec![0.0f32; rows * n];
                matmul_rows_into(&normed, cols, &weights, n, &mut composed).unwrap();

                let fused_bits: Vec<u32> = fused.iter().map(|v| v.to_bits()).collect();
                let composed_bits: Vec<u32> = composed.iter().map(|v| v.to_bits()).collect();
                assert_eq!(fused_bits, composed_bits, "{rows}x{cols}x{n} {mode:?}");
            }
        }
    }

    #[test]
    fn epilogue_validates_shapes() {
        let mut out = [0.0f32; 2];
        let err = norm_matmul_epilogue_into(
            &[1.0, 2.0],
            2,
            &[1.0, 1.0],
            &[0.0, 0.0],
            RowNormMode::LayerNorm,
            &[0.0],
            &[1.0],
            &[1.0, 0.0, 0.0],
            2,
            &mut out,
        );
        assert!(matches!(
            err,
            Err(NumericError::LengthMismatch {
                what: "weights",
                ..
            })
        ));
    }
}
