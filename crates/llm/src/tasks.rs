//! Synthetic multiple-choice task suites standing in for PIQA, WinoGrande, HellaSwag and
//! ARC-easy/challenge.
//!
//! The paper's Table I/II measure how much accuracy a model *loses* when its exact
//! normalization statistics are replaced by HAAN's skipped / subsampled / quantized
//! statistics. That degradation mechanism — small ISD errors perturbing the forward
//! pass until the arg-max choice flips — does not depend on the tasks being real
//! benchmarks, only on the evaluation being a likelihood-ranked multiple-choice
//! selection. Each synthetic suite is built as follows:
//!
//! 1. prompts and candidate continuations are sampled from the seeded
//!    [`SyntheticCorpus`];
//! 2. the *gold* label of an item is the choice the reference (exact-FP32) model ranks
//!    highest;
//! 3. a per-suite fraction of gold labels (`label_noise`) is then flipped to a random
//!    other choice, so the reference model's accuracy lands near the corresponding
//!    paper accuracy rather than at 100%.
//!
//! An approximate normalizer is then evaluated on exactly the same items; every item
//! where the approximation flips the model's ranking away from a correct gold label
//! shows up as an accuracy drop, mirroring the paper's evaluation protocol
//! (lm-eval-harness likelihood ranking).

use crate::dataset::SyntheticCorpus;
use crate::error::LlmError;
use crate::model::TransformerModel;
use crate::norm::Normalizer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of one synthetic task suite.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Full task name (e.g. `"WinoGrande (synthetic)"`).
    pub name: String,
    /// Short column label matching the paper's tables (e.g. `"WG"`).
    pub short_name: String,
    /// Number of items in the suite.
    pub num_items: usize,
    /// Number of candidate continuations per item.
    pub num_choices: usize,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Continuation length in tokens.
    pub choice_len: usize,
    /// Fraction of gold labels flipped away from the reference model's choice, which
    /// sets the ceiling accuracy of the suite (≈ `1 − label_noise`).
    pub label_noise: f64,
    /// Seed for item generation and label flipping.
    pub seed: u64,
}

impl TaskSpec {
    /// The five suites of Table I (WG, PQ, HS, A-e, A-c) with label-noise levels chosen
    /// so the reference accuracies land near the paper's LLaMA-7B row
    /// (0.70 / 0.79 / 0.57 / 0.75 / 0.42).
    #[must_use]
    pub fn paper_suites(num_items: usize, seed: u64) -> Vec<TaskSpec> {
        let base = |name: &str, short: &str, choices: usize, noise: f64, offset: u64| TaskSpec {
            name: format!("{name} (synthetic)"),
            short_name: short.to_string(),
            num_items,
            num_choices: choices,
            prompt_len: 12,
            choice_len: 4,
            label_noise: noise,
            seed: seed.wrapping_add(offset),
        };
        vec![
            base("WinoGrande", "WG", 2, 0.30, 1),
            base("PIQA", "PQ", 2, 0.21, 2),
            base("HellaSwag", "HS", 4, 0.43, 3),
            base("ARC-Easy", "A-e", 4, 0.25, 4),
            base("ARC-Challenge", "A-c", 4, 0.58, 5),
        ]
    }
}

/// One multiple-choice item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskItem {
    /// Prompt token sequence.
    pub prompt: Vec<u32>,
    /// Candidate continuations.
    pub choices: Vec<Vec<u32>>,
    /// Index of the gold choice.
    pub gold: usize,
}

/// Accuracy of one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskAccuracy {
    /// Number of correctly answered items.
    pub correct: usize,
    /// Total number of items.
    pub total: usize,
}

impl TaskAccuracy {
    /// Accuracy as a fraction in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// A generated task suite bound to a particular model's vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSuite {
    spec: TaskSpec,
    items: Vec<TaskItem>,
}

impl TaskSuite {
    /// Generates a suite for `model`, using `reference` to define the gold labels
    /// (before label noise is applied).
    ///
    /// # Errors
    ///
    /// Returns an error when item generation produces invalid sequences (e.g. the
    /// prompt plus continuation exceeds the model's maximum sequence length).
    pub fn generate<N: Normalizer + ?Sized>(
        spec: &TaskSpec,
        model: &TransformerModel,
        reference: &mut N,
    ) -> Result<Self, LlmError> {
        if spec.num_choices < 2 {
            return Err(LlmError::InvalidTaskItem(
                "a task needs at least two choices".to_string(),
            ));
        }
        if spec.prompt_len + spec.choice_len > model.config().max_seq_len {
            return Err(LlmError::InvalidSequenceLength {
                length: spec.prompt_len + spec.choice_len,
                max: model.config().max_seq_len,
            });
        }
        let corpus = SyntheticCorpus::new(model.config().vocab_size, 1.0);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut items = Vec::with_capacity(spec.num_items);
        for _ in 0..spec.num_items {
            let prompt = corpus.sample_sequence(spec.prompt_len, &mut rng)?;
            let choices: Result<Vec<Vec<u32>>, LlmError> = (0..spec.num_choices)
                .map(|_| corpus.sample_sequence(spec.choice_len, &mut rng))
                .collect();
            let choices = choices?;

            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (index, choice) in choices.iter().enumerate() {
                let score = model.score_continuation(&prompt, choice, reference)?;
                if score > best_score {
                    best_score = score;
                    best = index;
                }
            }
            let gold = if rng.gen_bool(spec.label_noise) {
                // Flip to a uniformly random *other* choice.
                let offset = rng.gen_range(1..spec.num_choices);
                (best + offset) % spec.num_choices
            } else {
                best
            };
            items.push(TaskItem {
                prompt,
                choices,
                gold,
            });
        }
        Ok(Self {
            spec: spec.clone(),
            items,
        })
    }

    /// The suite specification.
    #[must_use]
    pub fn spec(&self) -> &TaskSpec {
        &self.spec
    }

    /// The generated items.
    #[must_use]
    pub fn items(&self) -> &[TaskItem] {
        &self.items
    }

    /// Evaluates `model` with `normalizer` on this suite using likelihood ranking.
    ///
    /// # Errors
    ///
    /// Returns an error if scoring any item fails.
    pub fn evaluate<N: Normalizer + ?Sized>(
        &self,
        model: &TransformerModel,
        normalizer: &mut N,
    ) -> Result<TaskAccuracy, LlmError> {
        let mut correct = 0usize;
        for item in &self.items {
            let mut best = 0usize;
            let mut best_score = f64::NEG_INFINITY;
            for (index, choice) in item.choices.iter().enumerate() {
                let score = model.score_continuation(&item.prompt, choice, normalizer)?;
                if score > best_score {
                    best_score = score;
                    best = index;
                }
            }
            if best == item.gold {
                correct += 1;
            }
        }
        Ok(TaskAccuracy {
            correct,
            total: self.items.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::norm::ReferenceNormalizer;

    fn tiny_model() -> TransformerModel {
        TransformerModel::new(&ModelConfig::tiny_test(), 99).unwrap()
    }

    fn tiny_spec(noise: f64) -> TaskSpec {
        TaskSpec {
            name: "test".to_string(),
            short_name: "T".to_string(),
            num_items: 20,
            num_choices: 3,
            prompt_len: 6,
            choice_len: 3,
            label_noise: noise,
            seed: 5,
        }
    }

    #[test]
    fn generation_produces_requested_items() {
        let model = tiny_model();
        let suite =
            TaskSuite::generate(&tiny_spec(0.0), &model, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(suite.items().len(), 20);
        assert_eq!(suite.spec().num_choices, 3);
        for item in suite.items() {
            assert_eq!(item.choices.len(), 3);
            assert!(item.gold < 3);
            assert_eq!(item.prompt.len(), 6);
        }
    }

    #[test]
    fn zero_noise_gives_perfect_reference_accuracy() {
        let model = tiny_model();
        let suite =
            TaskSuite::generate(&tiny_spec(0.0), &model, &mut ReferenceNormalizer::new()).unwrap();
        let acc = suite
            .evaluate(&model, &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(acc.correct, acc.total);
        assert!((acc.accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn label_noise_lowers_the_ceiling() {
        let model = tiny_model();
        let mut spec = tiny_spec(0.5);
        spec.num_items = 40;
        let suite = TaskSuite::generate(&spec, &model, &mut ReferenceNormalizer::new()).unwrap();
        let acc = suite
            .evaluate(&model, &mut ReferenceNormalizer::new())
            .unwrap();
        // Expected accuracy ≈ 1 − 0.5 = 0.5; allow generous sampling slack.
        assert!(
            acc.accuracy() > 0.25 && acc.accuracy() < 0.8,
            "{}",
            acc.accuracy()
        );
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let model = tiny_model();
        let mut spec = tiny_spec(0.0);
        spec.num_choices = 1;
        assert!(TaskSuite::generate(&spec, &model, &mut ReferenceNormalizer::new()).is_err());
        let mut spec = tiny_spec(0.0);
        spec.prompt_len = 100;
        assert!(TaskSuite::generate(&spec, &model, &mut ReferenceNormalizer::new()).is_err());
    }

    #[test]
    fn paper_suites_cover_the_five_tasks() {
        let suites = TaskSpec::paper_suites(50, 7);
        let shorts: Vec<&str> = suites.iter().map(|s| s.short_name.as_str()).collect();
        assert_eq!(shorts, vec!["WG", "PQ", "HS", "A-e", "A-c"]);
        assert!(suites.iter().all(|s| s.num_items == 50));
        // Challenge suites are noisier (lower ceiling) than easy ones.
        let easy = suites.iter().find(|s| s.short_name == "A-e").unwrap();
        let challenge = suites.iter().find(|s| s.short_name == "A-c").unwrap();
        assert!(challenge.label_noise > easy.label_noise);
        // Seeds differ so the suites are not identical.
        assert_ne!(suites[0].seed, suites[1].seed);
    }

    #[test]
    fn accuracy_helper_handles_empty() {
        let acc = TaskAccuracy {
            correct: 0,
            total: 0,
        };
        assert_eq!(acc.accuracy(), 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let model = tiny_model();
        let a =
            TaskSuite::generate(&tiny_spec(0.3), &model, &mut ReferenceNormalizer::new()).unwrap();
        let b =
            TaskSuite::generate(&tiny_spec(0.3), &model, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(a, b);
    }
}
