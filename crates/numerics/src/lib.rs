//! Numeric substrate for the HAAN reproduction.
//!
//! The HAAN accelerator ([arXiv:2502.11832]) mixes floating-point interfaces with
//! fixed-point internal datapaths and relies on a handful of numeric building blocks:
//!
//! * [`Fixed`] — a runtime-parameterised Qm.n fixed-point number with saturating
//!   arithmetic, mirroring the registers used inside the input-statistics calculator.
//! * [`Fp16`] — a bit-accurate software IEEE 754 binary16, used for the FP16
//!   input/output format of the accelerator.
//! * [`Format`] — the numeric formats the accelerator can be configured with
//!   (FP32, FP16, INT8, fixed-point), plus quantization helpers.
//! * [`FpToFx`] / [`FxToFp`] — the FP2FX / FX2FP converter units of Fig. 4 and Fig. 5.
//! * [`invsqrt`] — the fast inverse square root (magic constant `0x5F3759DF` plus
//!   Newton refinement) implemented by the Square Root Inverter (Fig. 5), together
//!   with the Mitchell logarithm approximation and its σ ≈ 0.450465 correction.
//! * [`stats`] — reference, one-pass, streaming (Welford) and subsampled statistics
//!   (mean, variance, inverse standard deviation) used throughout the algorithm,
//!   plus the fused batched kernels behind the hot normalization path:
//!   [`stats::VectorStats::compute_chunked`] (lane-parallel one-pass statistics) and
//!   [`stats::normalize_rows_into`] (statistics + affine apply per row into a
//!   caller-provided buffer, no allocation). The scalar routines stay as the
//!   reference oracle; the fused kernels are property-tested against them.
//! * [`fusion`] — cross-operation fusion kernels: fused residual-add + statistics
//!   ([`fusion::add_rows_stats_chunked`]) and the norm+matmul epilogue
//!   ([`fusion::norm_matmul_epilogue_into`]), each bit-identical to the composed
//!   sequence it replaces.
//!
//! # Example
//!
//! ```
//! use haan_numerics::{invsqrt::fast_inv_sqrt, stats::VectorStats};
//!
//! let xs: Vec<f32> = (1..=64).map(|i| i as f32 / 8.0).collect();
//! let stats = VectorStats::compute(&xs);
//! let isd = fast_inv_sqrt(stats.variance, 1);
//! let exact = 1.0 / stats.variance.sqrt();
//! assert!((isd - exact).abs() / exact < 1e-2);
//! ```
//!
//! [arXiv:2502.11832]: https://arxiv.org/abs/2502.11832

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convert;
pub mod error;
pub mod fixed;
pub mod format;
pub mod fp16;
pub mod fusion;
pub mod invsqrt;
pub mod quant;
pub mod stats;

pub use convert::{FpToFx, FxToFp};
pub use error::NumericError;
pub use fixed::{Fixed, QFormat};
pub use format::Format;
pub use fp16::Fp16;
pub use quant::Int8Quantizer;
