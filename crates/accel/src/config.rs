//! Accelerator configurations, including the HAAN-v1/v2/v3 variants of Section V-B.

use crate::error::AccelError;
use haan_numerics::{Format, QFormat};

/// Static configuration of one HAAN accelerator instance.
///
/// `pd` is the input width (elements per cycle) of the input statistics calculator and
/// `pn` the width of the normalization units, matching the paper's notation. The
/// accelerator runs at 100 MHz on the Alveo U280.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Parallelism of the input statistics calculator (elements per cycle).
    pub pd: usize,
    /// Parallelism of the normalization units (elements per cycle).
    pub pn: usize,
    /// External input/output format.
    pub format: Format,
    /// Internal fixed-point format of the statistics datapath.
    pub internal: QFormat,
    /// Clock frequency in MHz.
    pub clock_mhz: f64,
    /// Newton iterations in the square root inverter.
    pub newton_iterations: u32,
    /// Number of parallel sample pipelines (the paper's configurations use one).
    pub pipelines: usize,
}

impl AccelConfig {
    /// HAAN-v1: single pipeline, FP16 input, `(pd, pn) = (128, 128)`.
    #[must_use]
    pub fn haan_v1() -> Self {
        Self {
            pd: 128,
            pn: 128,
            format: Format::Fp16,
            internal: QFormat::Q16_16,
            clock_mhz: 100.0,
            newton_iterations: 1,
            pipelines: 1,
        }
    }

    /// HAAN-v2: single pipeline, FP16 input, `(pd, pn) = (80, 160)` — the configuration
    /// that reallocates statistics parallelism to more normalization-unit pipeline
    /// levels when subsampling is enabled.
    #[must_use]
    pub fn haan_v2() -> Self {
        Self {
            pd: 80,
            pn: 160,
            ..Self::haan_v1()
        }
    }

    /// HAAN-v3: single pipeline, FP16 input, `(pd, pn) = (64, 128)` (used for OPT-2.7B).
    #[must_use]
    pub fn haan_v3() -> Self {
        Self {
            pd: 64,
            pn: 128,
            ..Self::haan_v1()
        }
    }

    /// The six rows of Table III: `(label, config)` pairs.
    #[must_use]
    pub fn table3_rows() -> Vec<(String, Self)> {
        let base = Self::haan_v1();
        let mut rows = Vec::new();
        for (format, pairs) in [
            (Format::Fp32, [(128usize, 128usize), (32, 128)]),
            (Format::Fp16, [(128, 128), (32, 128)]),
            (Format::Int8, [(256, 256), (32, 512)]),
        ] {
            for (pd, pn) in pairs {
                rows.push((
                    format!("{format} ({pd}, {pn})"),
                    Self {
                        pd,
                        pn,
                        format,
                        ..base
                    },
                ));
            }
        }
        rows
    }

    /// Cycle period in microseconds.
    #[must_use]
    pub fn cycle_us(&self) -> f64 {
        1.0 / self.clock_mhz
    }

    /// Converts a cycle count to microseconds at the configured clock.
    #[must_use]
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_us()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] for zero parallelism, zero pipelines or a
    /// non-positive clock.
    pub fn validate(&self) -> Result<(), AccelError> {
        if self.pd == 0 || self.pn == 0 {
            return Err(AccelError::InvalidConfig(
                "pd and pn must both be at least 1".to_string(),
            ));
        }
        if self.pipelines == 0 {
            return Err(AccelError::InvalidConfig(
                "at least one pipeline is required".to_string(),
            ));
        }
        if !(self.clock_mhz.is_finite() && self.clock_mhz > 0.0) {
            return Err(AccelError::InvalidConfig(
                "the clock frequency must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self::haan_v1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_variants() {
        assert_eq!(
            (AccelConfig::haan_v1().pd, AccelConfig::haan_v1().pn),
            (128, 128)
        );
        assert_eq!(
            (AccelConfig::haan_v2().pd, AccelConfig::haan_v2().pn),
            (80, 160)
        );
        assert_eq!(
            (AccelConfig::haan_v3().pd, AccelConfig::haan_v3().pn),
            (64, 128)
        );
        assert_eq!(AccelConfig::haan_v1().format, Format::Fp16);
        assert_eq!(AccelConfig::haan_v1().clock_mhz, 100.0);
        assert_eq!(AccelConfig::default(), AccelConfig::haan_v1());
    }

    #[test]
    fn table3_rows_cover_all_formats() {
        let rows = AccelConfig::table3_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows
            .iter()
            .any(|(label, c)| label.contains("FP32") && c.pd == 128));
        assert!(rows
            .iter()
            .any(|(label, c)| label.contains("INT8") && c.pn == 512));
        for (_, config) in &rows {
            assert!(config.validate().is_ok());
        }
    }

    #[test]
    fn cycle_conversion_at_100mhz() {
        let config = AccelConfig::haan_v1();
        assert!((config.cycle_us() - 0.01).abs() < 1e-12);
        assert!((config.cycles_to_us(1000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn validation_catches_degenerate_configurations() {
        let mut config = AccelConfig::haan_v1();
        config.pd = 0;
        assert!(config.validate().is_err());
        let mut config = AccelConfig::haan_v1();
        config.pipelines = 0;
        assert!(config.validate().is_err());
        let mut config = AccelConfig::haan_v1();
        config.clock_mhz = 0.0;
        assert!(config.validate().is_err());
        assert!(AccelConfig::haan_v1().validate().is_ok());
    }
}
