//! Symmetric INT8 quantization, as applied to normalization operands in Section III-C.

use crate::error::NumericError;

/// A symmetric per-tensor INT8 quantizer: `q = clamp(round(x / scale), -127, 127)`.
///
/// The paper applies INT8 quantization over the LayerNorm input of LLaMA-7B
/// (Section V-A). A symmetric scale keeps zero exactly representable, which matters
/// because normalization inputs are roughly zero-centred.
///
/// # Example
///
/// ```
/// use haan_numerics::Int8Quantizer;
/// let xs = [0.5f32, -1.0, 2.0, -2.0];
/// let q = Int8Quantizer::fit(&xs)?;
/// let ints = q.quantize_slice(&xs);
/// let back = q.dequantize_slice(&ints);
/// assert!((back[2] - 2.0).abs() < q.scale());
/// # Ok::<(), haan_numerics::NumericError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Int8Quantizer {
    scale: f32,
}

impl Int8Quantizer {
    /// Largest quantized magnitude.
    pub const QMAX: i8 = 127;

    /// Creates a quantizer with an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::InvalidScale`] for non-finite or non-positive scales.
    pub fn with_scale(scale: f32) -> Result<Self, NumericError> {
        if !(scale.is_finite() && scale > 0.0) {
            return Err(NumericError::InvalidScale(scale));
        }
        Ok(Self { scale })
    }

    /// Fits a symmetric scale to the data: `scale = max|x| / 127`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::EmptyInput`] for an empty slice and
    /// [`NumericError::InvalidScale`] when all values are zero or non-finite.
    pub fn fit(values: &[f32]) -> Result<Self, NumericError> {
        if values.is_empty() {
            return Err(NumericError::EmptyInput);
        }
        let max_abs = values
            .iter()
            .filter(|v| v.is_finite())
            .fold(0.0f32, |acc, &v| acc.max(v.abs()));
        Self::with_scale(max_abs / f32::from(Self::QMAX))
    }

    /// The quantization step.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value.
    #[must_use]
    pub fn quantize(&self, value: f32) -> i8 {
        let q = (value / self.scale).round();
        q.clamp(-f32::from(Self::QMAX), f32::from(Self::QMAX)) as i8
    }

    /// Dequantizes one value.
    #[must_use]
    pub fn dequantize(&self, value: i8) -> f32 {
        f32::from(value) * self.scale
    }

    /// Quantizes a slice.
    #[must_use]
    pub fn quantize_slice(&self, values: &[f32]) -> Vec<i8> {
        values.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Dequantizes a slice.
    #[must_use]
    pub fn dequantize_slice(&self, values: &[i8]) -> Vec<f32> {
        values.iter().map(|&v| self.dequantize(v)).collect()
    }

    /// The worst-case absolute rounding error for in-range values (half a step).
    #[must_use]
    pub fn max_rounding_error(&self) -> f32 {
        self.scale / 2.0
    }

    /// Mean squared quantization error over a slice, a convenient accuracy metric for
    /// ablation experiments.
    #[must_use]
    pub fn mean_squared_error(&self, values: &[f32]) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let total: f64 = values
            .iter()
            .map(|&v| {
                let err = f64::from(v - self.dequantize(self.quantize(v)));
                err * err
            })
            .sum();
        total / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fit_uses_max_abs() {
        let q = Int8Quantizer::fit(&[1.0, -3.0, 2.0]).unwrap();
        assert!((q.scale() - 3.0 / 127.0).abs() < 1e-7);
    }

    #[test]
    fn zero_maps_to_zero() {
        let q = Int8Quantizer::with_scale(0.1).unwrap();
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.dequantize(0), 0.0);
    }

    #[test]
    fn clamping_at_extremes() {
        let q = Int8Quantizer::with_scale(0.01).unwrap();
        assert_eq!(q.quantize(100.0), 127);
        assert_eq!(q.quantize(-100.0), -127);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(Int8Quantizer::fit(&[]).is_err());
        assert!(Int8Quantizer::fit(&[0.0, 0.0]).is_err());
        assert!(Int8Quantizer::with_scale(0.0).is_err());
        assert!(Int8Quantizer::with_scale(-1.0).is_err());
        assert!(Int8Quantizer::with_scale(f32::NAN).is_err());
    }

    #[test]
    fn round_trip_error_is_bounded() {
        let xs: Vec<f32> = (-100..=100).map(|i| i as f32 * 0.013).collect();
        let q = Int8Quantizer::fit(&xs).unwrap();
        for &x in &xs {
            let back = q.dequantize(q.quantize(x));
            assert!((x - back).abs() <= q.max_rounding_error() + 1e-6);
        }
        assert!(q.mean_squared_error(&xs) <= f64::from(q.max_rounding_error()).powi(2));
    }

    #[test]
    fn slice_round_trip_length_preserved() {
        let xs = [0.3f32, -0.7, 1.9];
        let q = Int8Quantizer::fit(&xs).unwrap();
        let ints = q.quantize_slice(&xs);
        assert_eq!(ints.len(), 3);
        assert_eq!(q.dequantize_slice(&ints).len(), 3);
        assert_eq!(q.mean_squared_error(&[]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_round_trip_within_half_step(xs in proptest::collection::vec(-50.0f32..50.0, 1..64)) {
            prop_assume!(xs.iter().any(|v| v.abs() > 1e-3));
            let q = Int8Quantizer::fit(&xs).unwrap();
            for &x in &xs {
                let back = q.dequantize(q.quantize(x));
                prop_assert!((x - back).abs() <= q.max_rounding_error() * 1.0001 + 1e-6);
            }
        }

        #[test]
        fn prop_quantize_is_monotone(a in -10.0f32..10.0, b in -10.0f32..10.0) {
            let q = Int8Quantizer::with_scale(0.05).unwrap();
            if a <= b {
                prop_assert!(q.quantize(a) <= q.quantize(b));
            }
        }
    }
}
