//! Batched multi-stream decode demo: a `DecodeGroup` advancing many KV-cached
//! streams in lockstep over one shared paged K/V pool.
//!
//! Six decode streams share one `ServeEngine`. Instead of stepping them one at a
//! time (one single-row normalization request per site, as `examples/decode.rs`
//! shows), the group advances every ready stream per tick through
//! `TransformerModel::step_many`: **one fused normalization request per site
//! carrying one row per stream**, while each stream's K/V rows stay in pages
//! borrowed from the engine's shared `KvBlockPool`. The demo checks every stream
//! bit-for-bit against the stateless full-recompute oracle on a private HAAN
//! normalizer, then shows a sliding-window stream decoding past the model's
//! maximum sequence length in bounded pool memory.
//!
//! Run with: `cargo run --release --example multi_stream`

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::{EvictionPolicy, ModelConfig, StreamingModel, TransformerModel};
use haan_numerics::Format;
use haan_serve::{KvPoolPolicy, ServeConfig, ServeEngine};

const STREAMS: usize = 6;
const TICKS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HaanConfig {
        label: "multi-stream demo".to_string(),
        n_sub: Some(16),
        format: Format::Fp16,
        backend: BackendSelection::Fused,
        ..Default::default()
    };
    let plan = SkipPlan {
        start: 2,
        end: 5,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    };
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 2024)?;
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: config.clone(),
        plan: Some(plan),
        kv_pool: KvPoolPolicy {
            page_rows: 8,
            capacity_rows: 2 * STREAMS * model.config().num_blocks * model.config().max_seq_len,
        },
        ..Default::default()
    });

    // 1. A decode group: six streams, one lockstep tick advances all of them.
    let prompts: Vec<Vec<u32>> = (0..STREAMS as u32)
        .map(|s| (0..3 + s % 3).map(|i| (s * 11 + i * 7) % 64).collect())
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine.decode_group(&model, &prompt_refs)?;
    let generated = group.decode(TICKS)?;
    assert_eq!(generated, STREAMS * TICKS, "every stream stays ready");
    for (i, prompt) in prompt_refs.iter().enumerate() {
        println!("stream {i}: {:?} → {:?}", prompt, group.generated(i));
    }

    // Parity: each stream must match a solo full-recompute decode on a private
    // HAAN normalizer, bit for bit — lockstep batching is a pure throughput
    // decision, never a numerics decision.
    for (i, prompt) in prompt_refs.iter().enumerate() {
        let mut private = HaanNormalizer::new(config.clone()).with_plan(plan);
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt)?;
        let expected = oracle.decode(TICKS, &mut private)?;
        assert_eq!(
            group.generated(i),
            expected.as_slice(),
            "lockstep decode diverged from the solo oracle on stream {i}"
        );
    }
    println!("parity: lockstep multi-stream decode == solo full recompute, bit for bit");

    // The whole point: one fused request per site per tick, one row per stream.
    let stats = engine.stats();
    println!(
        "engine: {} requests ({} rows) in {} batches — {:.1} rows/batch",
        stats.requests,
        stats.rows,
        stats.batches,
        stats.mean_batch_occupancy_rows(),
    );
    assert!(
        stats.mean_batch_occupancy_rows() > 1.0,
        "lockstep ticks must put more than one row per engine batch"
    );

    // Pool residency: pages are shared, bounded, and returned on drop.
    let pool = engine.kv_pool(model.config().embedding_dim);
    println!(
        "pool: {}/{} pages in use ({} bytes materialized) across {} streams",
        pool.pages_in_use(),
        pool.pages_total(),
        pool.bytes_materialized(),
        STREAMS,
    );
    assert!(pool.pages_in_use() > 0);
    drop(group);
    assert_eq!(pool.pages_in_use(), 0, "dropped streams return their pages");
    println!("pool: all pages returned after the group was dropped");

    // 2. Sliding-window eviction: a stream that outlives max_seq_len keeps
    //    decoding in bounded memory (oldest positions dropped, window recomputed).
    let max = model.config().max_seq_len;
    let ctx = model
        .start_decode_in(&pool)?
        .with_eviction(EvictionPolicy::SlidingWindow { keep_last: max / 2 });
    let mut windowed = StreamingModel::from_context(ctx, &[3, 17, 31])?;
    let mut norm = HaanNormalizer::new(config).with_plan(plan);
    let steps = max + 8; // well past the model's maximum sequence length
    windowed.decode(steps, &mut norm)?;
    assert_eq!(windowed.tokens().len(), 3 + steps);
    println!(
        "windowed stream: {} tokens generated past max_seq_len={} ({} pages peak)",
        steps,
        max,
        pool.peak_pages_in_use(),
    );

    engine.shutdown();
    println!("engine shut down cleanly");
    Ok(())
}
