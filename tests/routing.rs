//! Routing-tier integration suite: prefix-aware placement, the bounded LRU
//! prefix store, migration over the park/resume seam, and the chaos drill
//! where one group's pool is fault-injected dry and its streams drain to
//! healthy groups — every routed, attached, and migrated stream bit-identical
//! to its solo full-recompute oracle.

use haan::{BackendSelection, HaanConfig};
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::{ModelConfig, StreamingModel, TransformerModel};
use haan_obs::{EventKind, Obs, ObsSink};
use haan_router::{PlacementPolicy, Router, RouterConfig, SessionId};
use haan_serve::{KvPoolPolicy, ServeConfig, ServeEngine, StreamStatus};
use std::sync::Arc;

fn model() -> TransformerModel {
    TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid test model")
}

fn fused() -> HaanConfig {
    HaanConfig {
        backend: BackendSelection::Fused,
        ..HaanConfig::unoptimized()
    }
}

fn serve_config(capacity_rows: usize, obs: Option<Arc<dyn ObsSink>>) -> ServeConfig {
    ServeConfig {
        normalizer: fused(),
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows,
        },
        obs,
        ..Default::default()
    }
}

/// Distinct 3-token prompts (under one 4-row page, so the second decode tick
/// needs a fresh page — the deterministic trigger for the chaos drill).
fn drill_prompts(n: usize) -> Vec<Vec<u32>> {
    (0..n as u32)
        .map(|i| vec![(i % 60) + 1, ((i * 7) % 60) + 1, ((i * 13) % 60) + 1])
        .collect()
}

#[test]
fn chaos_drill_drains_a_dry_group_bit_identically() {
    let model = model();
    let obs = Obs::shared(1 << 16);
    let mut router = Router::with_uniform_groups(
        &model,
        4,
        &serve_config(512, Some(Arc::clone(&obs) as Arc<dyn ObsSink>)),
        RouterConfig {
            placement: PlacementPolicy::LeastLoaded,
            auto_prefix_min_count: 0,
            ..RouterConfig::default()
        },
    )
    .expect("fleet starts");
    let prompts = drill_prompts(16);
    let ids: Vec<SessionId> = prompts
        .iter()
        .map(|p| router.place(p).expect("placement"))
        .collect();
    // Fill the fleet's first page per stream, then strangle one group.
    router.decode(1).expect("healthy tick");
    let victim = router.location(ids[0]).0;
    let corrs: Vec<u64> = ids.iter().map(|&id| router.correlation_id(id)).collect();
    router
        .engine(victim)
        .kv_pool(model.config().embedding_dim)
        .set_alloc_fault(Some(Arc::new(|_, _| true)));
    // Tick until the victim group runs dry: its streams park under pressure
    // until the last one cannot grow either, and the tick reports the group
    // exhausted while the rest of the fleet keeps decoding.
    let mut saw_exhausted = false;
    for _ in 0..4 {
        let tick = router.step_all().expect("fleet survives a dry group");
        if tick.exhausted_groups.contains(&victim) {
            saw_exhausted = true;
            break;
        }
    }
    assert!(saw_exhausted, "the strangled group must report exhaustion");
    // Drain the dry group: every live stream migrates to a healthy group.
    let moved = router.drain_group(victim).expect("drain");
    assert!(moved > 0, "the drill must actually migrate streams");
    assert_eq!(router.stats().migrations, moved as u64);
    assert_eq!(
        router
            .engine(victim)
            .kv_pool(model.config().embedding_dim)
            .pages_in_use(),
        0,
        "a drained group holds no pages"
    );
    for &id in &ids {
        assert_ne!(router.location(id).0, victim);
    }
    // The rest of the fleet finishes the work; parity holds for every stream,
    // including the migrated ones (their resumes re-prefilled elsewhere).
    router.decode(6).expect("healthy fleet decodes");
    for (i, (id, prompt)) in ids.iter().zip(&prompts).enumerate() {
        assert_eq!(router.status(*id), StreamStatus::Active, "stream {i}");
        let generated = router.generated(*id);
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt).expect("oracle");
        let expected = oracle
            .decode(generated.len(), &mut ReferenceNormalizer::new())
            .expect("oracle decode");
        assert_eq!(generated, expected.as_slice(), "stream {i} diverged");
        assert_eq!(router.correlation_id(*id), corrs[i], "identity survives");
    }
    // The migration re-prefill cost lands on the healthy groups' counters.
    let fleet = router.fleet_stats();
    assert!(fleet.totals.resumes >= moved as u64);
    assert!(fleet.totals.resume_reprefill_rows > 0);
    assert_eq!(
        fleet.groups[victim].resumes, 0,
        "nobody resumes on the dry group"
    );
    // The shared sink saw the router's side of the story: fleet-unique
    // correlation IDs and one migrate event per move.
    let snapshot = obs.registry().export();
    assert_eq!(snapshot.counter("router.placed"), Some(16));
    assert_eq!(snapshot.counter("router.migrations"), Some(moved as u64));
    let migrate_events: Vec<_> = obs
        .recorder()
        .events()
        .into_iter()
        .filter(|e| matches!(e.kind, EventKind::Migrate { .. }))
        .collect();
    assert_eq!(migrate_events.len(), moved);
    for event in &migrate_events {
        match event.kind {
            EventKind::Migrate {
                from_group,
                to_group,
            } => {
                assert_eq!(from_group, victim as u64);
                assert_ne!(to_group, victim as u64);
            }
            _ => unreachable!(),
        }
        let corr = event.stream.expect("migrate events carry the stream");
        assert!(corrs.contains(&corr), "unknown correlation ID {corr}");
    }
}

#[test]
fn prefix_affinity_beats_least_loaded_on_shared_prefix_workloads() {
    let model = model();
    // Four cohorts, each sharing a two-page (8-token) system prompt.
    let mut prompts = Vec::new();
    for cohort in 0..4u32 {
        let shared: Vec<u32> = (0..8).map(|i| cohort * 8 + i + 1).collect();
        for user in 0..4u32 {
            let mut p = shared.clone();
            p.extend([40 + user, 50 + user]);
            prompts.push(p);
        }
    }
    let run = |placement: PlacementPolicy| {
        let mut router = Router::with_uniform_groups(
            &model,
            4,
            &serve_config(1024, None),
            RouterConfig {
                placement,
                ..RouterConfig::default()
            },
        )
        .expect("fleet starts");
        let ids: Vec<SessionId> = prompts
            .iter()
            .map(|p| router.place(p).expect("placement"))
            .collect();
        router.decode(4).expect("decode");
        for (id, prompt) in ids.iter().zip(&prompts) {
            let mut oracle = StreamingModel::new_full_recompute(&model, prompt).expect("oracle");
            let expected = oracle
                .decode(4, &mut ReferenceNormalizer::new())
                .expect("oracle");
            assert_eq!(router.generated(*id), expected.as_slice());
        }
        router.stats()
    };
    let affinity = run(PlacementPolicy::PrefixAffinity);
    let least = run(PlacementPolicy::LeastLoaded);
    // Affinity routes sharers to the group holding their prefix, so nearly
    // every cohort member attaches. Least-loaded scatters the cohorts across
    // pools, so most sharers land where the prefix is not.
    assert!(
        affinity.prefix_hit_rate() > least.prefix_hit_rate(),
        "affinity {:.2} must beat least-loaded {:.2}",
        affinity.prefix_hit_rate(),
        least.prefix_hit_rate()
    );
    assert!(affinity.prefix_hit_rate() >= 0.5);
}

#[test]
fn engine_prefix_store_is_a_bounded_lru_with_typed_stats() {
    let model = model();
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: fused(),
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: 512,
        },
        prefix_store_capacity: 2,
        ..Default::default()
    });
    let pool = engine.kv_pool(model.config().embedding_dim);
    let prefixes: Vec<Vec<u32>> = (0..3u32)
        .map(|i| (0..4).map(|j| i * 4 + j + 1).collect())
        .collect();
    // Interning a third prefix into a capacity-2 store evicts the oldest
    // unused entry and returns its pages.
    let a = engine
        .intern_prefix(&model, &prefixes[0])
        .expect("intern a");
    drop(a); // refcount 0: evictable
    engine
        .intern_prefix(&model, &prefixes[1])
        .expect("intern b");
    let pages_with_two = pool.pages_in_use();
    engine
        .intern_prefix(&model, &prefixes[2])
        .expect("intern c");
    let stats = engine.prefix_store_stats();
    assert_eq!(stats.interned, 3);
    assert_eq!(stats.evictions, 1);
    assert_eq!(engine.prefix_store_len(), 2);
    assert_eq!(
        pool.pages_in_use(),
        pages_with_two,
        "evicting one 1-page-per-block prefix pays for interning another"
    );
    // A re-intern of a resident prefix is a hit, not a new materialization.
    engine
        .intern_prefix(&model, &prefixes[1])
        .expect("re-intern b");
    assert_eq!(engine.prefix_store_stats().hits, 1);
    assert_eq!(engine.prefix_store_stats().interned, 3);
    // Explicit release frees the pages immediately.
    assert!(engine.release_prefix(&model, &prefixes[2]));
    assert!(!engine.release_prefix(&model, &prefixes[2]), "already gone");
    assert_eq!(engine.prefix_store_stats().released, 1);
    assert_eq!(engine.prefix_store_len(), 1);
    assert!(pool.pages_in_use() < pages_with_two);
    engine.shutdown();
}

#[test]
fn rebalance_moves_queued_streams_to_slack_groups() {
    let model = model();
    // Group 0 tiny (fits ~2 growing streams), group 1 huge.
    let configs = vec![serve_config(48, None), serve_config(512, None)];
    let mut router = Router::new(
        &model,
        configs,
        RouterConfig {
            placement: PlacementPolicy::LeastLoaded,
            auto_prefix_min_count: 0,
            ..RouterConfig::default()
        },
    )
    .expect("fleet starts");
    // Least-loaded sends everything to the huge group; force pressure onto
    // the small one by placing before the big group exists is impossible, so
    // drive placement the honest way: fill the big group first, then the
    // small group queues its tail.
    let prompts = drill_prompts(8);
    let ids: Vec<SessionId> = prompts
        .iter()
        .map(|p| router.place(p).expect("placement"))
        .collect();
    router.decode(2).expect("decode");
    let queued_on_small: Vec<SessionId> = ids
        .iter()
        .copied()
        .filter(|&id| {
            router.location(id).0 == 0 && matches!(router.status(id), StreamStatus::Queued)
        })
        .collect();
    if queued_on_small.is_empty() {
        // Nothing queued — the fleet absorbed the load; rebalance is a no-op.
        assert_eq!(router.rebalance().expect("rebalance"), 0);
        return;
    }
    let moved = router.rebalance().expect("rebalance");
    assert!(moved > 0, "queued streams on a pressured group must move");
    for id in queued_on_small.iter().take(moved) {
        assert_eq!(router.location(*id).0, 1);
    }
    router.decode(4).expect("decode after rebalance");
    for (id, prompt) in ids.iter().zip(&prompts) {
        if !matches!(router.status(*id), StreamStatus::Active) {
            continue;
        }
        let generated = router.generated(*id);
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt).expect("oracle");
        let expected = oracle
            .decode(generated.len(), &mut ReferenceNormalizer::new())
            .expect("oracle");
        assert_eq!(generated, expected.as_slice());
    }
}
