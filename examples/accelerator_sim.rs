//! Accelerator simulation: run the cycle-level HAAN accelerator on a normalization
//! layer, inspect its resource / power / latency estimates, and compare against the
//! DFX, SOLE, MHAA and GPU baselines on the GPT2-1.5B workload.
//!
//! The simulator is also reachable as an execution *backend* of the batched
//! normalization engine: after `AccelSimBackend::install()`, building a
//! `HaanNormalizer` with `HaanConfig::builder().backend(BackendSelection::AccelSim)`
//! routes every `normalize_matrix_into` call through the fixed-point datapath and
//! the pipeline cycle model — the final section below does exactly that (see
//! `ARCHITECTURE.md` for the dispatch diagram).
//!
//! Run with: `cargo run --release --example accelerator_sim`

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_accel::{AccelConfig, AccelSimBackend, HaanAccelerator};
use haan_baselines::{
    compare_engines, DfxEngine, GpuNormEngine, MhaaEngine, NormEngine, NormWorkload, SoleEngine,
};
use haan_llm::norm::{NormSite, Normalizer};
use haan_llm::NormKind;
use haan_numerics::Format;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // HAAN-v1 with the paper's GPT-2 settings: half-length subsampling and a skip range
    // covering ten deep layers.
    let algorithm = HaanConfig::builder()
        .label("HAAN (GPT-2)")
        .subsample(800)
        .format(Format::Fp16)
        .build();
    let plan = SkipPlan {
        start: 85,
        end: 95,
        decay: -0.035,
        correlation: -0.999,
        calibration_anchor_log_isd: -1.5,
    };
    let mut accel = HaanAccelerator::new(AccelConfig::haan_v1(), algorithm).with_plan(plan);
    accel.check_fits_u280()?;

    let resources = accel.resources();
    println!(
        "HAAN-v1 on the Alveo U280: {} LUT, {} FF, {} DSP",
        resources.lut, resources.ff, resources.dsp
    );

    // Functional run of one normalization layer over a small batch of token vectors.
    let tokens: Vec<Vec<f32>> = (0..8)
        .map(|t| {
            (0..1600)
                .map(|i| ((i * 7 + t * 13) % 29) as f32 / 7.0 - 2.0)
                .collect()
        })
        .collect();
    let gamma = vec![1.0f32; 1600];
    let beta = vec![0.0f32; 1600];
    let run = accel.normalize_layer(&tokens, &gamma, &beta, NormKind::LayerNorm, 0)?;
    println!(
        "one layer, {} tokens: {} cycles ({} cycles/vector steady state)",
        tokens.len(),
        run.report.total_cycles,
        run.report.initiation_interval
    );

    // Whole-model normalization workload at sequence length 512.
    let report = accel.workload(1600, 97, 512, NormKind::LayerNorm);
    println!(
        "GPT2-1.5B, seq 512: {:.1} us, {:.2} W, {:.1} uJ ({} of {} layers skipped, stage balance {:.2})",
        report.latency_us,
        report.average_power_w,
        report.energy_uj,
        report.skipped_layers,
        report.layers,
        report.stage_balance
    );

    // Compare against the baselines.
    let sole = SoleEngine::default();
    let dfx = DfxEngine::default();
    let mhaa = MhaaEngine::default();
    let gpu = GpuNormEngine::a100();
    let others: [&dyn NormEngine; 4] = [&sole, &mhaa, &dfx, &gpu];
    println!("\nnormalized latency / power vs HAAN-v1 (GPT2-1.5B, seq 512):");
    for row in compare_engines(&accel, &others, &NormWorkload::gpt2_1_5b(512)) {
        println!(
            "  {:10} latency {:6.2}x   power {:5.2}x",
            row.engine, row.normalized_latency, row.normalized_power
        );
    }

    // The simulator as a dispatchable backend: install it in the core backend
    // registry, then drive it through the exact same `normalize_matrix_into` call
    // path the software backends use.
    AccelSimBackend::install();
    let backend_config = HaanConfig::builder()
        .label("HAAN (accel-sim backend)")
        .subsample(800)
        .format(Format::Fp16)
        .backend(BackendSelection::AccelSim)
        .build();
    let mut normalizer = HaanNormalizer::new(backend_config);
    let batch = haan_llm::Matrix::from_vec(
        tokens.len(),
        1600,
        tokens.iter().flatten().copied().collect(),
    )?;
    let site = NormSite {
        layer_index: 0,
        kind: NormKind::LayerNorm,
    };
    let normalized = normalizer.normalize_matrix(site, &batch, &gamma, &beta);
    println!(
        "\naccel-sim backend via normalize_matrix_into: {} ({} rows normalized, {:.0}% of elements read)",
        normalizer.description(),
        normalized.rows(),
        normalizer.telemetry().read_fraction() * 100.0
    );
    Ok(())
}
