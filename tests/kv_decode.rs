//! Parity suite of the stateful incremental forward-pass API: KV-cached decode
//! (`DecodeContext` / `StreamingModel` / serve-layer `DecodeStream` /
//! `DecodeGroup`) must be **bit-identical** to the stateless full-prefix
//! recompute oracle, over edge shapes and across HAAN skip-anchor sites — and
//! paged pool-backed K/V storage must be bit-identical to the dense
//! `start_decode_dense` storage oracle.
//!
//! Why exact equality is the right bar: every operation outside the attention
//! score matrix is row-local (embeddings, norms, MLP, residuals, logit
//! projection), the blocked matmul kernels reduce each output element in
//! ascending-k order regardless of how many rows are in flight, the offset causal
//! softmax shares the zero-offset reduction order, and masked score columns
//! contribute exact `+0.0` terms — so the cached path computes the same floats,
//! not merely close ones. HAAN's skip predictor keeps the property because its
//! per-row anchors are recorded and consumed within one pass over the same rows.
//! Paged storage adds nothing numeric: the page gather fills the very per-head
//! panels the dense window copy fills, in the same row order.

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::{
    EvictionPolicy, KvBlockPool, LlmError, ModelConfig, StreamingModel, TransformerModel,
};
use haan_numerics::Format;
use haan_serve::{KvPoolPolicy, ServeConfig, ServeEngine};

fn model() -> TransformerModel {
    TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid test model")
}

fn haan_config() -> HaanConfig {
    // Subsampled FP16 statistics on the fused backend: the serving hot path, and
    // deterministic whether rows arrive one at a time or as a whole prefix.
    HaanConfig::builder()
        .label("kv-decode parity")
        .subsample(16)
        .format(Format::Fp16)
        .backend(BackendSelection::Fused)
        .build()
}

/// Skip plans straddling the interesting site boundaries of the 9-site test model
/// (sites 0..=7 are block norms, site 8 is the final norm): one plan anchored
/// mid-stack, one whose skip range runs through the final-norm site.
fn skip_plans() -> [SkipPlan; 2] {
    let plan = |start: usize, end: usize| SkipPlan {
        start,
        end,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    };
    [plan(2, 5), plan(6, 8)]
}

#[test]
fn cached_prefill_matches_stateless_forward_over_edge_shapes() {
    let model = model();
    let max = model.config().max_seq_len;
    let prompts: Vec<Vec<u32>> = vec![
        vec![5],                                              // single token
        vec![1, 5, 9],                                        // short
        (0..max as u32).map(|i| i % 8).collect(),             // exactly max_seq
        (0..(max as u32 - 1)).map(|i| (i * 3) % 8).collect(), // max_seq - 1
    ];
    for prompt in &prompts {
        // Exact statistics.
        let mut ctx = model.start_decode();
        let cached = ctx
            .prefill(prompt, &mut ReferenceNormalizer::new())
            .expect("cached prefill");
        let oracle = model
            .logits(prompt, &mut ReferenceNormalizer::new())
            .expect("stateless oracle");
        assert_eq!(cached, oracle, "reference: prompt len {}", prompt.len());

        // HAAN skipping/subsampling/quantization across both skip plans.
        for plan in skip_plans() {
            let mut ctx = model.start_decode();
            let mut cached_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
            let cached = ctx.prefill(prompt, &mut cached_norm).expect("haan prefill");
            let mut oracle_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
            let oracle = model.logits(prompt, &mut oracle_norm).expect("haan oracle");
            assert_eq!(
                cached,
                oracle,
                "haan plan ({}, {}): prompt len {}",
                plan.start,
                plan.end,
                prompt.len()
            );
        }
    }
}

#[test]
fn cached_steps_match_full_recompute_across_anchor_sites() {
    // Step the context one token at a time; each step's logits row must equal the
    // last row of a stateless full-prefix pass, for both exact statistics and a
    // skip plan whose anchor/skipped boundary the pass crosses every step.
    let model = model();
    let tokens: Vec<u32> = vec![3, 7, 11, 13, 2, 9, 31, 4];
    for plan in skip_plans() {
        let mut ctx = model.start_decode();
        let mut cached_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
        let mut oracle_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
        ctx.prefill(&tokens[..2], &mut cached_norm)
            .expect("prefill");
        for n in 3..=tokens.len() {
            let stepped = ctx
                .step(tokens[n - 1], &mut cached_norm)
                .expect("cached step");
            let oracle = model
                .logits(&tokens[..n], &mut oracle_norm)
                .expect("stateless oracle");
            assert_eq!(
                stepped.as_slice(),
                oracle.row(n - 1),
                "plan ({}, {}) step {n}",
                plan.start,
                plan.end
            );
        }
        // The anchor states both normalizers hold afterwards describe the same
        // last pass: cached saw 1 row, the oracle saw the full prefix, and the
        // new token's row anchor must agree (it is the last row either way).
        let cached_rows = cached_norm.anchor_state().row_log_isds().to_vec();
        let oracle_rows = oracle_norm.anchor_state().row_log_isds().to_vec();
        assert_eq!(cached_rows.len(), 1);
        assert_eq!(cached_rows.last(), oracle_rows.last());
    }
}

#[test]
fn prompt_of_one_token_decodes_to_max_seq() {
    // Shape edge: a 1-token prompt, decoded greedily to the model's capacity.
    let model = model();
    let mut cached = StreamingModel::new(&model, &[5]).unwrap();
    let mut oracle = StreamingModel::new_full_recompute(&model, &[5]).unwrap();
    let steps = model.config().max_seq_len - 1;
    let mut cached_norm = ReferenceNormalizer::new();
    let mut oracle_norm = ReferenceNormalizer::new();
    let generated_cached = cached.decode(steps, &mut cached_norm).unwrap();
    let generated_oracle = oracle.decode(steps, &mut oracle_norm).unwrap();
    assert_eq!(generated_cached, generated_oracle);
    assert_eq!(cached.remaining_capacity(), 0);
    assert!(cached.decode_step(&mut cached_norm).is_err());
    assert!(oracle.decode_step(&mut oracle_norm).is_err());
}

#[test]
fn prefill_of_exactly_max_seq_fills_the_context() {
    let model = model();
    let max = model.config().max_seq_len;
    let prompt: Vec<u32> = (0..max as u32).map(|i| (i * 5) % 8).collect();
    let mut ctx = model.start_decode();
    let mut norm = HaanNormalizer::new(haan_config()).with_plan(skip_plans()[0]);
    let logits = ctx
        .prefill(&prompt, &mut norm)
        .expect("full-capacity prefill");
    assert_eq!(logits.shape(), (max, model.config().vocab_size));
    assert_eq!(ctx.remaining_capacity(), 0);
    assert!(ctx.step(0, &mut norm).is_err(), "no capacity left");
    // Reset reclaims the stream without reallocating.
    ctx.reset();
    assert_eq!(ctx.remaining_capacity(), max);
}

#[test]
fn paged_decode_is_bit_identical_to_the_dense_oracle_across_skip_sites() {
    // The tentpole parity bar: pool-backed paged K/V storage (shared pool, two
    // interleaved streams) against the dense preallocated oracle, under HAAN
    // subsampled/quantized statistics and both skip plans — prefill and
    // step-by-step decode, bit for bit.
    let model = model();
    let pool = KvBlockPool::shared(
        2 * model.config().max_seq_len * model.config().num_blocks,
        4,
        model.config().embedding_dim,
    );
    let prompts: [&[u32]; 2] = [&[3, 7, 11], &[1, 2, 3, 4, 5]];
    for plan in skip_plans() {
        let mut paged: Vec<_> = prompts
            .iter()
            .map(|prompt| {
                let mut ctx = model.start_decode_in(&pool).expect("matching pool width");
                assert!(ctx.is_paged());
                let mut norm = HaanNormalizer::new(haan_config()).with_plan(plan);
                let logits = ctx.prefill(prompt, &mut norm).expect("paged prefill");
                (ctx, norm, logits)
            })
            .collect();
        let mut dense: Vec<_> = prompts
            .iter()
            .map(|prompt| {
                let mut ctx = model.start_decode_dense();
                assert!(!ctx.is_paged());
                let mut norm = HaanNormalizer::new(haan_config()).with_plan(plan);
                let logits = ctx.prefill(prompt, &mut norm).expect("dense prefill");
                (ctx, norm, logits)
            })
            .collect();
        for ((_, _, from_paged), (_, _, from_dense)) in paged.iter().zip(&dense) {
            assert_eq!(from_paged, from_dense, "prefill, plan {plan:?}");
        }
        // Interleave the streams' steps so their pool pages interleave too.
        for step in 0..6u32 {
            for (s, ((paged_ctx, paged_norm, _), (dense_ctx, dense_norm, _))) in
                paged.iter_mut().zip(&mut dense).enumerate()
            {
                let token = (step * 5 + s as u32) % 8;
                let from_paged = paged_ctx.step(token, paged_norm).expect("paged step");
                let from_dense = dense_ctx.step(token, dense_norm).expect("dense step");
                assert_eq!(from_paged, from_dense, "stream {s} step {step}");
            }
        }
    }
    drop(pool);
}

#[test]
fn windowed_stream_outlives_max_seq_and_stays_parity_correct() {
    // Sliding-window eviction under a HAAN skip plan: a stream decoding far past
    // max_seq_len must, at every step, match the stateless oracle over the
    // resident window (the satellite acceptance bar for eviction).
    let model = model();
    let max = model.config().max_seq_len;
    let keep = max / 2;
    let plan = skip_plans()[0];
    let mut ctx = model
        .start_decode()
        .with_eviction(EvictionPolicy::SlidingWindow { keep_last: keep });
    let mut norm = HaanNormalizer::new(haan_config()).with_plan(plan);
    let mut window: Vec<u32> = vec![4, 2, 7];
    ctx.prefill(&window, &mut norm).expect("prefill");
    for round in 0..(2 * max) as u32 {
        let token = (round * 3 + 1) % 8;
        if window.len() + 1 > max {
            window = window[window.len() - keep..].to_vec();
        }
        window.push(token);
        let stepped = ctx.step(token, &mut norm).expect("windowed step");
        let mut oracle_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
        let oracle = model
            .logits(&window, &mut oracle_norm)
            .expect("stateless oracle over the window");
        assert_eq!(
            stepped.as_slice(),
            oracle.row(window.len() - 1),
            "round {round}"
        );
        assert_eq!(ctx.resident_tokens(), window.as_slice());
    }
    assert!(
        ctx.len() <= max,
        "the context must never exceed the model maximum"
    );
}

#[test]
fn windowed_stream_survives_preemption_and_stays_parity_correct() {
    // The overload-issue satellite: a sliding-window stream that is repeatedly
    // *parked* (the preemption primitive — pages freed, token history kept) and
    // transparently resumed, including past max_seq_len where the resume must
    // re-apply the window trim, generates exactly what (a) a never-parked twin
    // generates and (b) a fresh-context stateless oracle over the resident
    // window predicts — under the HAAN fused/FP16/subsampled config with a
    // skip plan, the serving hot path.
    let model = model();
    let max = model.config().max_seq_len;
    let blocks = model.config().num_blocks;
    let keep = max / 2;
    let plan = skip_plans()[0];
    let window_policy = EvictionPolicy::SlidingWindow { keep_last: keep };
    let pool = KvBlockPool::shared(2 * max * blocks, 4, model.config().embedding_dim);
    let twin_pool = KvBlockPool::shared(2 * max * blocks, 4, model.config().embedding_dim);
    let prompt: [u32; 3] = [4, 2, 7];
    let mut preempted = StreamingModel::from_context(
        model
            .start_decode_in(&pool)
            .expect("pool matches model")
            .with_eviction(window_policy),
        &prompt,
    )
    .expect("windowed stream");
    let mut twin = StreamingModel::from_context(
        model
            .start_decode_in(&twin_pool)
            .expect("pool matches model")
            .with_eviction(window_policy),
        &prompt,
    )
    .expect("twin stream");
    let mut norm = HaanNormalizer::new(haan_config()).with_plan(plan);
    let mut twin_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
    // Manually tracked resident window, for the fresh-context oracle: the
    // first step feeds the whole prompt, every later step feeds the previous
    // round's token (evicting first when the window would overflow).
    let mut window: Vec<u32> = prompt.to_vec();
    let mut pending: Option<u32> = None;
    let mut parks = 0;
    for round in 0..2 * max as u32 {
        if let Some(token) = pending.take() {
            if window.len() + 1 > max {
                window = window[window.len() - keep..].to_vec();
            }
            window.push(token);
        }
        // Park on a cadence that lands before, during, and after the first
        // window wrap-around.
        if round % 7 == 3 {
            assert!(preempted.park(), "an active stream must park");
            assert!(preempted.is_parked());
            assert_eq!(pool.pages_in_use(), 0, "parking returns every page");
            parks += 1;
        }
        let ours = preempted.decode_step(&mut norm).expect("resume and step");
        let expected = twin.decode_step(&mut twin_norm).expect("twin step");
        assert_eq!(ours, expected, "round {round}: parked ≠ never-parked");
        let mut oracle_norm = HaanNormalizer::new(haan_config()).with_plan(plan);
        let oracle = model
            .logits(&window, &mut oracle_norm)
            .expect("fresh-context oracle over the resident window");
        let last = oracle.row(window.len() - 1);
        let oracle_token = last
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i as u32)
            .expect("non-empty vocabulary");
        assert_eq!(ours, oracle_token, "round {round}: ≠ fresh-context oracle");
        pending = Some(ours);
    }
    assert!(parks >= 8, "the cadence must have parked through the wrap");
    assert!(!preempted.is_parked());
    assert_eq!(preempted.tokens(), twin.tokens());
}

#[test]
fn pool_pressure_is_a_typed_error_and_the_stream_stays_consistent() {
    // A pool too small for the stream's growth: the step that cannot get a page
    // fails with the typed KvPoolExhausted (no panic), the failed pass rolls
    // back, and the rolled-back stream still answers correctly after a reset.
    let model = model();
    let blocks = model.config().num_blocks;
    // Room for 12 positions per block — less than max_seq_len (32).
    let pool = KvBlockPool::shared(12 * blocks, 4, model.config().embedding_dim);
    let mut ctx = model.start_decode_in(&pool).expect("pool matches model");
    let mut norm = ReferenceNormalizer::new();
    let mut tokens: Vec<u32> = vec![1, 2, 3, 4];
    ctx.prefill(&tokens, &mut norm).expect("prefill fits");
    let mut err = None;
    for round in 0..16u32 {
        let token = round % 8;
        match ctx.step(token, &mut norm) {
            Ok(_) => tokens.push(token),
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    let err = err.expect("the pool must run out before 16 more tokens");
    assert!(
        matches!(err, LlmError::KvPoolExhausted { .. }),
        "expected a typed pool-exhaustion error, got {err:?}"
    );
    // Rollback left the stream exactly where it was before the failed step:
    // another pass over the same state must match the stateless oracle.
    assert_eq!(ctx.len(), tokens.len());
    assert_eq!(ctx.resident_tokens(), tokens.as_slice());
    ctx.reset();
    assert_eq!(pool.pages_in_use(), 0, "reset returns every page");
    let logits = ctx
        .prefill(&[5, 6, 7], &mut norm)
        .expect("post-reset prefill");
    let oracle = model
        .logits(&[5, 6, 7], &mut ReferenceNormalizer::new())
        .expect("oracle");
    assert_eq!(logits, oracle);
}

#[test]
fn windowed_stream_runs_forever_in_bounded_pool_memory() {
    // A pool sized for one full window plus eviction headroom per block
    // (eviction recomputes the kept window into fresh pages before freeing the
    // old ones): an endless stream never exhausts the pool and peak residency
    // stays within the bound.
    let model = model();
    let max = model.config().max_seq_len;
    let blocks = model.config().num_blocks;
    let pool = KvBlockPool::shared(2 * max * blocks, 4, model.config().embedding_dim);
    let mut ctx = model
        .start_decode_in(&pool)
        .expect("pool matches model")
        .with_eviction(EvictionPolicy::SlidingWindow { keep_last: max / 2 });
    let mut norm = ReferenceNormalizer::new();
    ctx.prefill(&[3, 1, 4], &mut norm).expect("prefill");
    for round in 0..(3 * max) as u32 {
        ctx.step(round % 8, &mut norm)
            .expect("windowed stream must never exhaust its bounded pool");
    }
    assert!(ctx.len() <= max);
    assert!(
        pool.peak_pages_in_use() <= pool.pages_total(),
        "peak residency {} exceeded the pool bound {}",
        pool.peak_pages_in_use(),
        pool.pages_total()
    );
}

#[test]
fn engine_decode_group_matches_solo_full_recompute_with_skipping() {
    // The batched multi-stream step through the engine: four streams advanced in
    // lockstep (one fused request per site per tick, one row per stream) under a
    // HAAN skip plan must generate exactly the tokens of four solo
    // full-recompute decodes on private normalizers.
    let model = model();
    let plan = skip_plans()[0];
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(plan),
        kv_pool: KvPoolPolicy {
            page_rows: 8,
            capacity_rows: 4 * model.config().max_seq_len * model.config().num_blocks,
        },
        ..Default::default()
    });
    let prompts: [&[u32]; 4] = [&[1, 9, 17], &[4, 8, 15, 16, 23], &[2], &[6, 6, 6]];
    let mut group = engine
        .decode_group(&model, &prompts)
        .expect("valid prompts");
    const TICKS: usize = 6;
    for _ in 0..TICKS {
        let results = group.step_all().expect("lockstep tick");
        assert!(results.iter().all(Option::is_some));
    }
    for (i, prompt) in prompts.iter().enumerate() {
        let mut private = HaanNormalizer::new(haan_config()).with_plan(plan);
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
        let expected = oracle.decode(TICKS, &mut private).unwrap();
        assert_eq!(
            group.generated(i),
            expected.as_slice(),
            "stream {i} diverged from solo full recompute"
        );
    }
    // Lockstep ticks carry one row per stream — the batch occupancy the whole
    // exercise exists to produce.
    let stats = engine.stats();
    assert!(
        stats.mean_batch_occupancy_rows() > 1.0,
        "expected > 1 row per site per tick, got {}",
        stats.mean_batch_occupancy_rows()
    );
    // All pages come from one engine pool, bounded and shared.
    let pool = engine.kv_pool(model.config().embedding_dim);
    assert!(pool.pages_in_use() > 0);
    drop(group);
    assert_eq!(
        pool.pages_in_use(),
        0,
        "dropped streams release their pages"
    );
    engine.shutdown();
}

#[test]
fn interleaved_engine_decode_streams_match_solo_full_recompute() {
    // Two KV-cached decode streams share one ServeEngine, their single-row
    // normalization requests interleaving (and coalescing) in the scheduler. Each
    // stream must generate exactly the tokens of a full-recompute decode on a
    // private HAAN normalizer — incremental, batched, multi-tenant decode changes
    // nothing observable.
    let model = model();
    let plan = skip_plans()[0];
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(plan),
        ..Default::default()
    });
    let prompts: [&[u32]; 2] = [&[1, 9, 17], &[4, 8, 15, 16, 23]];
    let mut streams: Vec<_> = prompts
        .iter()
        .map(|prompt| engine.decode_stream(&model, prompt).expect("valid prompt"))
        .collect();
    const STEPS: usize = 6;
    for _ in 0..STEPS {
        for stream in &mut streams {
            stream.step().expect("engine decode step");
        }
    }
    for (prompt, stream) in prompts.iter().zip(&streams) {
        let mut private = HaanNormalizer::new(haan_config()).with_plan(plan);
        let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
        let expected = oracle.decode(STEPS, &mut private).unwrap();
        assert_eq!(
            stream.generated(),
            expected.as_slice(),
            "prompt {prompt:?} diverged from solo full recompute"
        );
    }
    assert!(engine.stats().requests > 0);
    engine.shutdown();
}

#[test]
fn streaming_through_a_session_is_incremental_and_identical() {
    // The pre-existing serving path (StreamingModel + Session-as-Normalizer) now
    // rides the KV cache by default; it must keep matching a private normalizer
    // while submitting 1-row requests after prefill.
    let model = model();
    let plan = skip_plans()[1];
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(plan),
        ..Default::default()
    });
    let prompt = [6u32, 2, 27];
    let mut session = engine.session();
    let mut served_stream = StreamingModel::new(&model, &prompt).unwrap();
    let served = served_stream.decode(4, &mut session).unwrap();

    let mut private = HaanNormalizer::new(haan_config()).with_plan(plan);
    let mut private_stream = StreamingModel::new_full_recompute(&model, &prompt).unwrap();
    let expected = private_stream.decode(4, &mut private).unwrap();
    assert_eq!(served, expected);

    let stats = engine.stats();
    // 1 prefill pass over 3 rows + 3 single-row passes, 9 sites each: the row
    // count proves the prefix was never resubmitted.
    let sites = model.num_norm_layers() as u64;
    assert_eq!(stats.requests, 4 * sites);
    assert_eq!(stats.rows, (3 + 3) * sites);
    engine.shutdown();
}
