//! Activity-based power model (the Power column of Table III and the data behind Fig. 8a).
//!
//! Power is modelled as a static board/shell component plus dynamic contributions from
//! the DSP array (scaled by the operand format's MAC energy), the LUT fabric and the
//! flip-flops, all scaled by an *activity factor* — the fraction of cycles the
//! corresponding lanes are actually busy. Subsampling and ISD skipping lower the
//! statistics-path activity, which is where HAAN's >60 % power reduction over DFX comes
//! from.

use crate::config::AccelConfig;
use crate::resources::ResourceEstimate;
use haan_numerics::Format;

/// A power estimate in watts, split into components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Static (board + shell) power.
    pub static_w: f64,
    /// Dynamic power of the statistics datapath (DSP-dominated).
    pub statistics_w: f64,
    /// Dynamic power of the normalization units.
    pub normalization_w: f64,
    /// Dynamic power of the fabric (LUT/FF switching).
    pub fabric_w: f64,
}

impl PowerEstimate {
    /// Total power in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.statistics_w + self.normalization_w + self.fabric_w
    }
}

/// The power model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Static power in watts.
    pub static_w: f64,
    /// Dynamic energy coefficient per DSP at full activity (watts per DSP, FP32).
    pub dsp_w: f64,
    /// Dynamic power per LUT at full activity.
    pub lut_w: f64,
    /// Dynamic power per FF at full activity.
    pub ff_w: f64,
}

impl PowerModel {
    /// The calibrated model used throughout the reproduction.
    #[must_use]
    pub fn calibrated() -> Self {
        Self {
            static_w: 0.8,
            dsp_w: 0.003,
            lut_w: 1.2e-5,
            ff_w: 1.0e-5,
        }
    }

    /// Relative dynamic energy of a format's arithmetic against FP32.
    fn format_factor(format: Format) -> f64 {
        format.relative_mac_energy()
    }

    /// Estimates the power of a configuration.
    ///
    /// * `stats_activity` — fraction of cycles the statistics lanes are busy
    ///   (subsampling and skipping reduce this below 1).
    /// * `norm_activity` — fraction of cycles the normalization lanes are busy.
    #[must_use]
    pub fn estimate(
        &self,
        config: &AccelConfig,
        stats_activity: f64,
        norm_activity: f64,
    ) -> PowerEstimate {
        let resources = ResourceEstimate::for_config(config);
        let factor = Self::format_factor(config.format);
        let total_lanes = (config.pd + config.pn).max(1) as f64;
        let stats_share = config.pd as f64 / total_lanes;
        let norm_share = config.pn as f64 / total_lanes;

        let dsp_power = resources.dsp as f64 * self.dsp_w * factor;
        let fabric_power = resources.lut as f64 * self.lut_w + resources.ff as f64 * self.ff_w;

        PowerEstimate {
            static_w: self.static_w,
            statistics_w: dsp_power * stats_share * stats_activity.clamp(0.0, 1.0),
            normalization_w: dsp_power * norm_share * norm_activity.clamp(0.0, 1.0),
            fabric_w: fabric_power
                * norm_activity
                    .clamp(0.0, 1.0)
                    .max(stats_activity.clamp(0.0, 1.0)),
        }
    }

    /// Estimates power at full activity (the Table III operating condition).
    #[must_use]
    pub fn estimate_full_activity(&self, config: &AccelConfig) -> PowerEstimate {
        self.estimate(config, 1.0, 1.0)
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::paper_table3_resources;

    #[test]
    fn fp32_draws_more_than_fp16_which_draws_more_than_int8() {
        let model = PowerModel::calibrated();
        let fp32 = model.estimate_full_activity(&AccelConfig {
            format: Format::Fp32,
            ..AccelConfig::haan_v1()
        });
        let fp16 = model.estimate_full_activity(&AccelConfig::haan_v1());
        let int8 = model.estimate_full_activity(&AccelConfig {
            format: Format::Int8,
            ..AccelConfig::haan_v1()
        });
        assert!(fp32.total_w() > fp16.total_w());
        assert!(fp16.total_w() > int8.total_w());
        // The paper reports FP32 ≈ 1.29× the FP16 power on average.
        let ratio = fp32.total_w() / fp16.total_w();
        assert!(ratio > 1.1 && ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn calibration_tracks_table3_for_the_balanced_rows() {
        let model = PowerModel::calibrated();
        let rows = AccelConfig::table3_rows();
        let paper = paper_table3_resources();
        for ((label, config), (_, _, paper_power)) in rows.iter().zip(&paper) {
            // The (32, 512) INT8 row is a known outlier in the paper (it draws more than
            // FP32); the calibrated model does not reproduce it.
            if label.contains("(32, 512)") {
                continue;
            }
            let estimate = model.estimate_full_activity(config).total_w();
            let err = (estimate - paper_power).abs() / paper_power;
            assert!(
                err < 0.25,
                "{label}: model {estimate:.3} W vs paper {paper_power} W"
            );
        }
    }

    #[test]
    fn reduced_activity_reduces_power() {
        let model = PowerModel::calibrated();
        let config = AccelConfig::haan_v1();
        let full = model.estimate(&config, 1.0, 1.0);
        let subsampled = model.estimate(&config, 0.25, 1.0);
        assert!(subsampled.total_w() < full.total_w());
        assert!(subsampled.statistics_w < full.statistics_w);
        assert_eq!(subsampled.normalization_w, full.normalization_w);
        // Activity is clamped to [0, 1].
        let clamped = model.estimate(&config, 5.0, -1.0);
        assert!(clamped.statistics_w <= full.statistics_w + 1e-12);
        assert!(clamped.normalization_w >= 0.0);
    }

    #[test]
    fn components_add_up() {
        let estimate = PowerEstimate {
            static_w: 1.0,
            statistics_w: 2.0,
            normalization_w: 3.0,
            fabric_w: 0.5,
        };
        assert!((estimate.total_w() - 6.5).abs() < 1e-12);
        assert_eq!(PowerModel::default(), PowerModel::calibrated());
    }
}
