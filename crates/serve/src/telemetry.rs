//! Per-batch serving telemetry: occupancy, queue wait, execution cost.

use haan_obs::Histogram;
use std::sync::{Mutex, MutexGuard};

/// Aggregated serving statistics, snapshotted by
/// [`ServeEngine::stats`](crate::ServeEngine::stats).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingStats {
    /// Requests answered.
    pub requests: u64,
    /// Rows normalized.
    pub rows: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Elements (rows × cols) normalized.
    pub elements: u64,
    /// Total time spent inside the batched engine, nanoseconds (saturating —
    /// a multi-day run degrades the mean rather than wrapping it).
    pub exec_ns: u64,
    /// Mean queue wait across *all* requests served so far, microseconds.
    pub mean_queue_wait_us: f64,
    /// Median queue wait over the engine's whole lifetime, microseconds.
    /// Estimated from a fixed-bucket log-scale histogram, so it is within
    /// 1/8 relative error of the exact order statistic.
    pub p50_queue_wait_us: u64,
    /// 99th-percentile queue wait over the whole lifetime, microseconds
    /// (same log-histogram estimate as the median).
    pub p99_queue_wait_us: u64,
}

impl ServingStats {
    /// Mean requests coalesced per dispatched batch (> 1 means the scheduler is
    /// actually batching concurrent clients).
    #[must_use]
    pub fn mean_batch_occupancy_requests(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Mean rows per dispatched batch.
    #[must_use]
    pub fn mean_batch_occupancy_rows(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.rows as f64 / self.batches as f64
        }
    }

    /// Engine-side normalization cost per element, nanoseconds.
    #[must_use]
    pub fn ns_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.exec_ns as f64 / self.elements as f64
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    requests: u64,
    rows: u64,
    batches: u64,
    elements: u64,
    exec_ns: u64,
    total_queue_wait_us: u128,
}

/// Interior-mutable recorder shared between the worker thread (writes) and the
/// engine handle (reads).
///
/// Queue waits go into a constant-memory log-scale [`Histogram`] (replacing
/// the bounded sorted-window percentile estimate of earlier revisions): the
/// percentiles now cover the engine's whole lifetime instead of a recency
/// window, at ≤ 1/8 relative error, and recording is lock-free.
#[derive(Debug, Default)]
pub(crate) struct Recorder {
    inner: Mutex<Inner>,
    queue_wait_us: Histogram,
}

impl Recorder {
    /// Telemetry counters are monotone aggregates with no cross-field
    /// invariants that a panicking writer could leave half-established, so a
    /// poisoned lock is recovered rather than propagated: the engine must keep
    /// serving (and reporting stats) even after a worker thread died mid-batch.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        haan_obs::lock_recover(&self.inner)
    }

    pub(crate) fn record_batch(
        &self,
        requests: u64,
        rows: u64,
        elements: u64,
        exec_ns: u64,
        queue_waits_us: impl IntoIterator<Item = u64>,
    ) {
        let mut inner = self.lock();
        inner.requests += requests;
        inner.rows += rows;
        inner.batches += 1;
        inner.elements += elements;
        inner.exec_ns = inner.exec_ns.saturating_add(exec_ns);
        for wait in queue_waits_us {
            inner.total_queue_wait_us += u128::from(wait);
            self.queue_wait_us.record(wait);
        }
    }

    pub(crate) fn stats(&self) -> ServingStats {
        let inner = self.lock();
        let waits = self.queue_wait_us.snapshot();
        let mean = if inner.requests == 0 {
            0.0
        } else {
            inner.total_queue_wait_us as f64 / inner.requests as f64
        };
        ServingStats {
            requests: inner.requests,
            rows: inner.rows,
            batches: inner.batches,
            elements: inner.elements,
            exec_ns: inner.exec_ns,
            mean_queue_wait_us: mean,
            p50_queue_wait_us: waits.quantile(0.50),
            p99_queue_wait_us: waits.quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_all_zero() {
        let stats = Recorder::default().stats();
        assert_eq!(stats, ServingStats::default());
        assert_eq!(stats.mean_batch_occupancy_requests(), 0.0);
        assert_eq!(stats.mean_batch_occupancy_rows(), 0.0);
        assert_eq!(stats.ns_per_element(), 0.0);
    }

    #[test]
    fn batches_aggregate_and_percentiles_are_ordered() {
        let recorder = Recorder::default();
        recorder.record_batch(3, 6, 384, 1_000, [10, 20, 30]);
        recorder.record_batch(1, 2, 128, 500, [100]);
        let stats = recorder.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.rows, 8);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.elements, 512);
        assert_eq!(stats.exec_ns, 1_500);
        assert_eq!(stats.mean_batch_occupancy_requests(), 2.0);
        assert_eq!(stats.mean_batch_occupancy_rows(), 4.0);
        assert!((stats.mean_queue_wait_us - 40.0).abs() < 1e-9);
        assert!(stats.p50_queue_wait_us <= stats.p99_queue_wait_us);
        // 100 lands in the log bucket [96, 104): the p99 estimate is the
        // bucket midpoint clamped to the observed max, within 1/8 of exact.
        let p99 = stats.p99_queue_wait_us as f64;
        assert!((p99 - 100.0).abs() <= 100.0 / 8.0, "p99 {p99} too far");
        assert!((stats.ns_per_element() - 1_500.0 / 512.0).abs() < 1e-9);
    }

    #[test]
    fn recorder_survives_a_poisoned_lock() {
        let recorder = std::sync::Arc::new(Recorder::default());
        recorder.record_batch(1, 1, 16, 100, [5]);
        let poisoner = std::sync::Arc::clone(&recorder);
        std::thread::spawn(move || {
            let _guard = poisoner.inner.lock().unwrap();
            panic!("poison the telemetry lock");
        })
        .join()
        .unwrap_err();
        // Reads and writes keep working on the recovered lock.
        recorder.record_batch(1, 1, 16, 100, [15]);
        let stats = recorder.stats();
        assert_eq!(stats.requests, 2);
        assert!((stats.mean_queue_wait_us - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exec_ns_saturates_instead_of_wrapping() {
        let recorder = Recorder::default();
        recorder.record_batch(1, 1, 1, u64::MAX, [0]);
        recorder.record_batch(1, 1, 1, u64::MAX, [0]);
        assert_eq!(recorder.stats().exec_ns, u64::MAX);
    }

    #[test]
    fn lifetime_percentiles_and_mean_stay_exactish_at_scale() {
        let recorder = Recorder::default();
        // A bimodal lifetime: 4096 zero-waits then a 4096-long 1000 µs plateau.
        // The histogram covers the *whole* history (no window eviction), so the
        // median sits on the zero mode exactly (zeros occupy their own unit
        // bucket) and the p99 lands within one log bucket of the plateau.
        recorder.record_batch(8_192, 8_192, 1, 1, std::iter::repeat_n(0u64, 4_096));
        recorder.record_batch(0, 0, 0, 0, std::iter::repeat_n(1_000u64, 4_096));
        let stats = recorder.stats();
        assert_eq!(stats.p50_queue_wait_us, 0);
        let p99 = stats.p99_queue_wait_us as f64;
        assert!((p99 - 1_000.0).abs() <= 1_000.0 / 8.0, "p99 {p99} too far");
        assert!((stats.mean_queue_wait_us - 500.0).abs() < 1e-9);
    }
}
