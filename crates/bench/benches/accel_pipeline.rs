//! Cycle-accurate accelerator simulation throughput: the functional datapath of one
//! normalization layer, and the analytic workload model used by the figure binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use haan::HaanConfig;
use haan_accel::{AccelConfig, HaanAccelerator};
use haan_llm::NormKind;
use haan_numerics::Format;

fn bench_accel(c: &mut Criterion) {
    let mut group = c.benchmark_group("accelerator");

    // Functional simulation of one layer over a small token batch.
    group.bench_function("normalize_layer_functional_16x1600", |b| {
        let algorithm = HaanConfig::builder()
            .subsample(800)
            .format(Format::Fp16)
            .build();
        let mut accel = HaanAccelerator::new(AccelConfig::haan_v1(), algorithm);
        let tokens: Vec<Vec<f32>> = (0..16)
            .map(|t| {
                (0..1600)
                    .map(|i| ((i + t * 13) % 41) as f32 / 10.0 - 2.0)
                    .collect()
            })
            .collect();
        let gamma = vec![1.0f32; 1600];
        let beta = vec![0.0f32; 1600];
        b.iter(|| {
            accel
                .normalize_layer(black_box(&tokens), &gamma, &beta, NormKind::LayerNorm, 0)
                .unwrap()
        })
    });

    // Analytic workload model for the three published configurations.
    for (name, config) in [
        ("haan_v1", AccelConfig::haan_v1()),
        ("haan_v2", AccelConfig::haan_v2()),
        ("haan_v3", AccelConfig::haan_v3()),
    ] {
        group.bench_function(format!("workload_model_{name}"), |b| {
            let accel = HaanAccelerator::new(config, HaanConfig::gpt2_1_5b_paper());
            b.iter(|| accel.workload(black_box(1600), 97, 512, NormKind::LayerNorm))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_accel);
criterion_main!(benches);
