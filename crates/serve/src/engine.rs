//! The serving engine: bounded request queue → scheduler → batched normalization →
//! per-client response routing.

use crate::error::ServeError;
use crate::request::{NormParams, NormRequest, NormResponse, PendingResponse};
use crate::scheduler::{BatchKey, ReadyBatch, Scheduler, SchedulerPolicy};
use crate::session::Session;
use crate::telemetry::{Recorder, ServingStats};
use haan::{AnchorState, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::norm::Normalizer;
use haan_llm::{KvBlockPool, Matrix};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the worker sleeps between queue polls when no flush deadline is nearer,
/// which bounds shutdown latency.
const IDLE_TICK_US: u64 = 2_000;

/// Configuration of a [`ServeEngine`].
///
/// Every field has a serviceable default, so partial construction works:
///
/// ```
/// use haan::HaanConfig;
/// use haan_serve::{SchedulerPolicy, ServeConfig};
///
/// let config = ServeConfig {
///     normalizer: HaanConfig::builder().subsample(64).build(),
///     scheduler: SchedulerPolicy {
///         max_batch_rows: 16,
///         ..Default::default()
///     },
///     ..Default::default()
/// };
/// assert!(config.plan.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The HAAN configuration of the engine's shared normalizer. Use
    /// [`BackendSelection::Fused`](haan::BackendSelection) for deterministic
    /// parity with direct `normalize_matrix_into` calls.
    pub normalizer: HaanConfig,
    /// Calibrated skip plan attached to the shared normalizer, if any.
    pub plan: Option<SkipPlan>,
    /// Coalescing policy of the request-batching scheduler.
    pub scheduler: SchedulerPolicy,
    /// Bound of the submission queue, in requests; submissions block (backpressure)
    /// while the queue is full. Values of 0 act as 1.
    pub queue_capacity: usize,
    /// Sizing of the shared K/V block pools behind
    /// [`ServeEngine::decode_stream`] / [`ServeEngine::decode_group`].
    pub kv_pool: KvPoolPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            normalizer: HaanConfig::default(),
            plan: None,
            scheduler: SchedulerPolicy::default(),
            queue_capacity: 64,
            kv_pool: KvPoolPolicy::default(),
        }
    }
}

/// Sizing of the engine's shared [`KvBlockPool`]s: every decode stream the
/// engine starts borrows its K/V pages from one pool per embedding width, so
/// memory is bounded by the pool instead of `streams × max_seq × E`.
///
/// Sizing heuristic (see `ROADMAP.md`): `capacity_rows ≈ expected concurrent
/// streams × model blocks × expected live positions per stream`. Pool pages are
/// materialized lazily, so an over-provisioned capacity only bounds, it does
/// not allocate; an under-provisioned one surfaces as
/// [`LlmError::KvPoolExhausted`](haan_llm::LlmError) on the stream that could
/// not grow (never as a panic, and never corrupting the stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvPoolPolicy {
    /// Rows per page. Smaller pages waste less slack per block/stream but grow
    /// page tables faster; 16 suits decode (1 row per step) with short prompts.
    pub page_rows: usize,
    /// Total K/V row pairs per pool (one pool per distinct embedding width).
    pub capacity_rows: usize,
}

impl Default for KvPoolPolicy {
    fn default() -> Self {
        Self {
            page_rows: 16,
            capacity_rows: 16_384,
        }
    }
}

/// One in-flight request: the public request plus its response route.
pub(crate) struct WorkItem {
    request: NormRequest,
    reply: mpsc::Sender<Result<NormResponse, ServeError>>,
    /// Engine-clock timestamp of *submission* (not worker admission), so queue-wait
    /// telemetry and max-wait flushes include time spent in the bounded channel —
    /// which is exactly where backpressure queuing happens.
    enqueued_us: u64,
}

/// The submission side of the bounded work queue, cloned into every session.
pub(crate) type WorkSender = SyncSender<WorkItem>;

/// State shared between the engine handle, its sessions, and the worker thread.
#[derive(Debug)]
pub(crate) struct Shared {
    epoch: Instant,
    closed: AtomicBool,
    /// Requests accepted by `submit_via` but not yet received by the worker.
    /// Closes the shutdown race: a submitter increments *before* checking
    /// `closed`, so the drain can wait for every accepted request to land in the
    /// queue instead of missing ones sent concurrently with shutdown.
    in_flight: AtomicU64,
    params: Mutex<HashMap<u64, Vec<Arc<NormParams>>>>,
    recorder: Recorder,
}

impl Shared {
    fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// FNV-1a over the parameter bit patterns, used only to bucket the intern table
    /// (and the sessions' lock-free memo of it).
    pub(crate) fn params_fingerprint(gamma: &[f32], beta: &[f32]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |value: u64| {
            hash ^= value;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(gamma.len() as u64);
        for &v in gamma.iter().chain(beta) {
            mix(u64::from(v.to_bits()));
        }
        hash
    }

    pub(crate) fn intern_params(&self, gamma: &[f32], beta: &[f32]) -> Arc<NormParams> {
        let fingerprint = Self::params_fingerprint(gamma, beta);
        let mut table = self.params.lock().expect("params intern table poisoned");
        let bucket = table.entry(fingerprint).or_default();
        if let Some(existing) = bucket
            .iter()
            .find(|p| p.gamma() == gamma && p.beta() == beta)
        {
            return Arc::clone(existing);
        }
        let interned = Arc::new(
            NormParams::new(gamma.to_vec(), beta.to_vec())
                .expect("interned parameters are shape-checked by the caller"),
        );
        bucket.push(Arc::clone(&interned));
        interned
    }
}

pub(crate) fn submit_via(
    shared: &Shared,
    tx: &SyncSender<WorkItem>,
    request: NormRequest,
) -> Result<PendingResponse, ServeError> {
    request.validate()?;
    // Announce the submission before checking `closed` (both SeqCst): either the
    // shutdown drain observes our in-flight count and waits for the send, or we
    // observe `closed` and never send. No accepted request can fall between.
    shared.in_flight.fetch_add(1, Ordering::SeqCst);
    if shared.closed.load(Ordering::SeqCst) {
        shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        return Err(ServeError::Shutdown);
    }
    let (reply_tx, reply_rx) = mpsc::channel();
    let sent = tx.send(WorkItem {
        request,
        reply: reply_tx,
        enqueued_us: shared.now_us(),
    });
    shared.in_flight.fetch_sub(1, Ordering::SeqCst);
    sent.map_err(|_| ServeError::Shutdown)?;
    Ok(PendingResponse { rx: reply_rx })
}

/// The request-batching serving engine.
///
/// Many concurrent clients (each holding a [`Session`], or calling
/// [`ServeEngine::submit`] directly) feed normalization requests into a bounded
/// queue; a worker thread coalesces compatible requests — same site, same width,
/// same interned parameters — into one batched `normalize_matrix_into` call per
/// scheduler tick and routes the per-row results back to each submitter, together
/// with its updated skip-anchor state. See `ARCHITECTURE.md` ("Serving layer") for
/// the data-flow diagram.
pub struct ServeEngine {
    shared: Arc<Shared>,
    tx: SyncSender<WorkItem>,
    worker: Option<JoinHandle<()>>,
    /// Shared K/V block pools of the engine's decode streams, one per distinct
    /// embedding width (created on first use).
    kv_pools: Mutex<Vec<Arc<KvBlockPool>>>,
    kv_pool_policy: KvPoolPolicy,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("closed", &self.shared.closed.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ServeEngine {
    /// Starts an engine: spawns the scheduler/worker thread and returns the handle
    /// clients create sessions from.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            epoch: Instant::now(),
            closed: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            params: Mutex::new(HashMap::new()),
            recorder: Recorder::default(),
        });
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
        let kv_pool_policy = config.kv_pool;
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("haan-serve-worker".to_string())
            .spawn(move || worker_loop(&worker_shared, &rx, &config))
            .expect("spawn serving worker");
        Self {
            shared,
            tx,
            worker: Some(worker),
            kv_pools: Mutex::new(Vec::new()),
            kv_pool_policy,
        }
    }

    /// Creates a client session. Sessions are independent `Send` handles: each owns
    /// its stream's skip-anchor state and can live on its own thread.
    #[must_use]
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.shared), self.tx.clone())
    }

    /// The engine's shared K/V block pool for streams of the given embedding
    /// width, created (lazily, sized by [`KvPoolPolicy`]) on first use. Every
    /// stream of [`ServeEngine::decode_stream`] and
    /// [`ServeEngine::decode_group`] borrows its pages here, so concurrent
    /// streams share one bounded arena instead of each preallocating
    /// `max_seq × E` per block.
    #[must_use]
    pub fn kv_pool(&self, embedding_dim: usize) -> Arc<KvBlockPool> {
        let mut pools = self.kv_pools.lock().expect("kv pool registry poisoned");
        if let Some(pool) = pools
            .iter()
            .find(|pool| pool.embedding_dim() == embedding_dim)
        {
            return Arc::clone(pool);
        }
        let pool = KvBlockPool::shared(
            self.kv_pool_policy.capacity_rows.max(1),
            self.kv_pool_policy.page_rows.max(1),
            embedding_dim,
        );
        pools.push(Arc::clone(&pool));
        pool
    }

    /// Starts a KV-cached decode stream over `model`, normalizing through a fresh
    /// session of this engine: each generated token runs one incremental forward
    /// pass whose normalization sites are coalesced with other in-flight streams
    /// by the scheduler. The stream's K/V rows are paged out of the engine's
    /// shared pool ([`ServeEngine::kv_pool`]), so any number of streams share one
    /// bounded arena.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the prompt is empty, too long
    /// for the model, or out of vocabulary.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan_llm::{ModelConfig, TransformerModel};
    /// use haan_serve::{ServeConfig, ServeEngine};
    ///
    /// let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
    /// let mut engine = ServeEngine::start(ServeConfig::default());
    /// let mut stream = engine.decode_stream(&model, &[1, 5, 9])?;
    /// let token = stream.step()?; // one O(seq) forward pass through the engine
    /// assert_eq!(stream.generated(), &[token]);
    /// // The stream's K/V pages live in the engine's shared pool.
    /// assert!(engine.kv_pool(model.config().embedding_dim).pages_in_use() > 0);
    /// engine.shutdown();
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn decode_stream<'m>(
        &self,
        model: &'m haan_llm::TransformerModel,
        prompt: &[u32],
    ) -> Result<crate::DecodeStream<'m>, ServeError> {
        let pool = self.kv_pool(model.config().embedding_dim);
        crate::DecodeStream::new(self.session(), &pool, model, prompt)
    }

    /// Starts a **batched multi-stream** decode group: `prompts.len()` KV-cached
    /// streams that advance in lockstep, one token per stream per
    /// [`DecodeGroup::step_all`](crate::DecodeGroup::step_all) tick. Each tick
    /// gathers every ready stream and runs one incremental pass over the stacked
    /// rows, so the engine executes **one fused `normalize_matrix_into` call per
    /// site with one row per stream** — wide batches by construction, where
    /// independent [`ServeEngine::decode_stream`]s only coalesce when their
    /// client threads happen to overlap. K/V pages come from the engine's shared
    /// pool; tokens are bit-identical to each stream decoding alone (see
    /// `tests/kv_decode.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `prompts` is empty or any
    /// prompt is empty, too long for the model, or out of vocabulary.
    pub fn decode_group<'m>(
        &self,
        model: &'m haan_llm::TransformerModel,
        prompts: &[&[u32]],
    ) -> Result<crate::DecodeGroup<'m>, ServeError> {
        let pool = self.kv_pool(model.config().embedding_dim);
        crate::DecodeGroup::new(self.session(), &pool, model, prompts)
    }

    /// Interns `γ`/`β` parameter vectors, returning the engine-wide shared handle.
    /// Content-equal vectors always return the same `Arc`, which is what makes
    /// requests from different clients coalescible (see
    /// [`BatchKey`]).
    #[must_use]
    pub fn intern_params(&self, gamma: &[f32], beta: &[f32]) -> Arc<NormParams> {
        self.shared.intern_params(gamma, beta)
    }

    /// Submits one request, returning a handle to the (possibly not yet produced)
    /// response. Blocks only while the submission queue is full (backpressure).
    ///
    /// Most clients use the higher-level [`Session::normalize`] instead, which
    /// manages the anchor-state round trip automatically.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for malformed requests and
    /// [`ServeError::Shutdown`] once the engine has been shut down.
    ///
    /// # Examples
    ///
    /// ```
    /// use haan::AnchorState;
    /// use haan_llm::norm::NormSite;
    /// use haan_llm::NormKind;
    /// use haan_serve::{NormRequest, ServeConfig, ServeEngine};
    ///
    /// let mut engine = ServeEngine::start(ServeConfig::default());
    /// let params = engine.intern_params(&[1.0; 4], &[0.0; 4]);
    /// let pending = engine.submit(NormRequest {
    ///     site: NormSite { layer_index: 0, kind: NormKind::LayerNorm },
    ///     cols: 4,
    ///     data: vec![2.0, 4.0, 6.0, 8.0],
    ///     params,
    ///     anchors: AnchorState::new(),
    /// })?;
    /// let response = pending.wait()?;
    /// assert_eq!(response.data.len(), 4);
    /// // LayerNorm output is (close to) zero-mean.
    /// let mean: f32 = response.data.iter().sum::<f32>() / 4.0;
    /// assert!(mean.abs() < 1e-3);
    /// engine.shutdown();
    /// # Ok::<(), haan_serve::ServeError>(())
    /// ```
    pub fn submit(&self, request: NormRequest) -> Result<PendingResponse, ServeError> {
        submit_via(&self.shared, &self.tx, request)
    }

    /// Serving statistics accumulated so far (occupancy, queue waits, execution
    /// cost). Safe to call at any time, including after shutdown.
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        self.shared.recorder.stats()
    }

    /// Shuts the engine down gracefully: new submissions fail with
    /// [`ServeError::Shutdown`], every request accepted before that — including
    /// ones racing this call — is drained and answered, then the worker exits.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, rx: &mpsc::Receiver<WorkItem>, config: &ServeConfig) {
    let mut normalizer = HaanNormalizer::new(config.normalizer.clone());
    if let Some(plan) = config.plan {
        normalizer = normalizer.with_plan(plan);
    }
    let mut scheduler: Scheduler<WorkItem> = Scheduler::new(config.scheduler);
    loop {
        if shared.closed.load(Ordering::SeqCst) {
            // Graceful drain: answer everything accepted before `closed` was
            // observed. `in_flight` covers submitters racing the shutdown (they
            // increment before checking `closed`), so once it reads zero every
            // accepted request has finished its queue insert and one more sweep
            // of the channel sees it.
            loop {
                while let Ok(item) = rx.try_recv() {
                    admit(&mut scheduler, item);
                }
                while let Some(batch) = scheduler.pop_any() {
                    execute_batch(shared, &mut normalizer, batch);
                }
                if shared.in_flight.load(Ordering::SeqCst) > 0 {
                    std::thread::yield_now();
                    continue;
                }
                // In-flight hit zero after the sweep above; one last look catches
                // a queue insert that completed in between.
                match rx.try_recv() {
                    Ok(item) => admit(&mut scheduler, item),
                    Err(_) => return,
                }
            }
        }
        let now = shared.now_us();
        let wait_us = scheduler
            .next_deadline_us()
            .map_or(IDLE_TICK_US, |deadline| deadline.saturating_sub(now))
            .min(IDLE_TICK_US);
        match rx.recv_timeout(Duration::from_micros(wait_us)) {
            Ok(item) => {
                admit(&mut scheduler, item);
                // Greedily drain everything already buffered so one wake-up sees
                // the full backlog (this is where coalescing happens).
                while let Ok(more) = rx.try_recv() {
                    admit(&mut scheduler, more);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Engine handle and every session are gone: drain and exit.
                while let Some(batch) = scheduler.pop_any() {
                    execute_batch(shared, &mut normalizer, batch);
                }
                return;
            }
        }
        let now = shared.now_us();
        while let Some(batch) = scheduler.pop_ready(now) {
            execute_batch(shared, &mut normalizer, batch);
        }
    }
}

fn admit(scheduler: &mut Scheduler<WorkItem>, item: WorkItem) {
    let key = BatchKey::of(&item.request);
    let rows = item.request.rows();
    // The scheduler's clock is the submission timestamp, so max-wait flushes and
    // queue-wait telemetry measure true request age, including channel dwell.
    let enqueued_us = item.enqueued_us;
    scheduler.admit(key, rows, enqueued_us, item);
}

/// Executes one coalesced batch: gather rows (and, at skipped sites, per-session
/// anchors), run the batched engine once, scatter rows (and, at anchor sites,
/// updated anchors) back per request.
fn execute_batch(shared: &Shared, normalizer: &mut HaanNormalizer, batch: ReadyBatch<WorkItem>) {
    let cols = batch.key.cols;
    let rows = batch.rows;
    let site = batch.key.site;
    let params = Arc::clone(&batch.entries[0].item.request.params);
    // Site role under the engine's plan — queried from the normalizer itself (the
    // same policy the batched path applies), so serve-side batch assembly can
    // never disagree with solo execution about a site.
    let skipped = normalizer.is_skipped_site(site.layer_index);
    let is_anchor = normalizer.is_anchor_site(site.layer_index);

    let mut data = Vec::with_capacity(rows * cols);
    for entry in &batch.entries {
        data.extend_from_slice(&entry.item.request.data);
    }
    // Anchors are gathered only where the site consumes them: resolve each
    // session's state into one per-row vector, so every row predicts from *its
    // own* session's history even inside a mixed batch.
    if skipped {
        let calibration_fallback = normalizer
            .plan()
            .map_or(0.0, |plan| plan.calibration_anchor_log_isd);
        let mut combined_anchors = Vec::with_capacity(rows);
        for entry in &batch.entries {
            let request = &entry.item.request;
            combined_anchors.extend(
                request
                    .anchors
                    .resolved_row_logs(request.rows(), calibration_fallback),
            );
        }
        normalizer.set_anchor_state(AnchorState::from_parts(None, combined_anchors));
    }
    let input = Matrix::from_vec(rows, cols, data).expect("validated request shapes");
    let mut out = Matrix::zeros(rows, cols);

    let dispatched_us = shared.now_us();
    let started = Instant::now();
    normalizer.normalize_matrix_into(site, &input, params.gamma(), params.beta(), &mut out);
    let exec_ns = started.elapsed().as_nanos();

    // A snapshot is taken only where the site produced fresh anchors.
    let snapshot = is_anchor.then(|| normalizer.anchor_state());
    // Record the batch *before* routing replies: a client must never observe its
    // response while the batch is still missing from the statistics.
    let queue_waits: Vec<u64> = batch
        .entries
        .iter()
        .map(|entry| dispatched_us.saturating_sub(entry.enqueued_us))
        .collect();
    shared.recorder.record_batch(
        batch.entries.len() as u64,
        rows as u64,
        (rows * cols) as u64,
        exec_ns,
        queue_waits.iter().copied(),
    );
    // Scatter: per-request row segments plus, at anchor sites, each session's
    // slice of the observed anchors (last-row-wins scalar tier, the same rule the
    // batched path applies — see `AnchorState::slice_rows`).
    let mut row_offset = 0usize;
    for (entry, queue_wait_us) in batch.entries.into_iter().zip(queue_waits) {
        let item = entry.item;
        let request_rows = item.request.rows();
        let segment = &out.as_slice()[row_offset * cols..(row_offset + request_rows) * cols];
        let anchors = match &snapshot {
            Some(observed) => observed.slice_rows(row_offset..row_offset + request_rows),
            None => item.request.anchors,
        };
        // A client that gave up (dropped the receiver) is not an engine error.
        let _ = item.reply.send(Ok(NormResponse {
            data: segment.to_vec(),
            anchors,
            queue_wait_us,
        }));
        row_offset += request_rows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan::BackendSelection;
    use haan_llm::norm::NormSite;
    use haan_llm::NormKind;

    fn fused_config() -> ServeConfig {
        ServeConfig {
            normalizer: HaanConfig::builder()
                .backend(BackendSelection::Fused)
                .build(),
            ..Default::default()
        }
    }

    #[test]
    fn submit_rejects_malformed_requests() {
        let mut engine = ServeEngine::start(fused_config());
        let params = engine.intern_params(&[1.0; 4], &[0.0; 4]);
        let site = NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        };
        let ragged = NormRequest {
            site,
            cols: 4,
            data: vec![0.0; 6],
            params,
            anchors: AnchorState::new(),
        };
        assert!(matches!(
            engine.submit(ragged),
            Err(ServeError::InvalidRequest(_))
        ));
        engine.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_rejects_new_work() {
        let mut engine = ServeEngine::start(fused_config());
        let params = engine.intern_params(&[1.0; 2], &[0.0; 2]);
        engine.shutdown();
        engine.shutdown();
        let site = NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        };
        let request = NormRequest {
            site,
            cols: 2,
            data: vec![1.0, 2.0],
            params,
            anchors: AnchorState::new(),
        };
        assert!(matches!(engine.submit(request), Err(ServeError::Shutdown)));
    }

    #[test]
    fn interning_is_content_addressed() {
        let engine = ServeEngine::start(fused_config());
        let a = engine.intern_params(&[1.0, 2.0], &[0.0, 0.5]);
        let b = engine.intern_params(&[1.0, 2.0], &[0.0, 0.5]);
        let c = engine.intern_params(&[1.0, 2.0], &[0.0, 0.6]);
        assert!(Arc::ptr_eq(&a, &b), "equal content must share the Arc");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn debug_impl_reports_state() {
        let engine = ServeEngine::start(fused_config());
        let rendered = format!("{engine:?}");
        assert!(rendered.contains("ServeEngine"));
    }
}
