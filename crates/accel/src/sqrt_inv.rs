//! The Square Root Inverter (Fig. 5).
//!
//! The variance arrives in fixed point, is converted to FP32 (FX2FP), seeded with the
//! `0x5F3759DF` bit trick, refined with Newton's method in fixed point, and handed to
//! the normalization units. The unit is shared by all normalization lanes because only
//! one ISD per vector is needed.

use crate::config::AccelConfig;
use crate::error::AccelError;
use haan_numerics::invsqrt::{fast_inv_sqrt, newton_refine, InvSqrtUnit};
use haan_numerics::stats::DEFAULT_EPS;

/// Functional + timing result of one inverse-square-root computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SqrtInvResult {
    /// The produced inverse standard deviation.
    pub isd: f32,
    /// Latency in cycles.
    pub cycles: u64,
    /// Relative error against the exact `1/sqrt` (diagnostic).
    pub relative_error: f64,
}

/// The square root inverter.
#[derive(Debug, Clone, PartialEq)]
pub struct SquareRootInverter {
    newton_iterations: u32,
    eps: f32,
}

impl SquareRootInverter {
    /// Builds the unit for an accelerator configuration.
    #[must_use]
    pub fn new(config: &AccelConfig) -> Self {
        Self {
            newton_iterations: config.newton_iterations,
            eps: DEFAULT_EPS,
        }
    }

    /// Number of Newton refinement iterations.
    #[must_use]
    pub fn newton_iterations(&self) -> u32 {
        self.newton_iterations
    }

    /// Computes `1/sqrt(variance + eps)`.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidWorkload`] for negative or non-finite variances.
    pub fn compute(&self, variance: f32) -> Result<SqrtInvResult, AccelError> {
        if !variance.is_finite() || variance < 0.0 {
            return Err(AccelError::InvalidWorkload(format!(
                "variance must be a non-negative finite number, got {variance}"
            )));
        }
        let x = variance + self.eps;
        let isd = fast_inv_sqrt(x, self.newton_iterations);
        let exact = 1.0 / f64::from(x).sqrt();
        Ok(SqrtInvResult {
            isd,
            cycles: self.cycles(),
            relative_error: ((f64::from(isd) - exact) / exact).abs(),
        })
    }

    /// Latency in cycles: FX2FP conversion (1), seed shift/subtract (1), the Newton
    /// iterations (3 cycles each: two multiplies plus the fused `1.5 − x·y²` step, as in
    /// Fig. 5), and the final FP2FX conversion (1).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        1 + InvSqrtUnit::new(self.newton_iterations).latency_cycles() + 1
    }

    /// Exposes one raw Newton refinement step (used by datapath-level tests).
    #[must_use]
    pub fn refine(&self, x: f32, y: f32) -> f32 {
        newton_refine(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(iterations: u32) -> SquareRootInverter {
        let config = AccelConfig {
            newton_iterations: iterations,
            ..AccelConfig::haan_v1()
        };
        SquareRootInverter::new(&config)
    }

    #[test]
    fn computes_accurate_isd_with_one_iteration() {
        let sri = unit(1);
        for variance in [0.01f32, 0.25, 1.0, 9.0, 1234.5] {
            let result = sri.compute(variance).unwrap();
            let exact = 1.0 / (variance + DEFAULT_EPS).sqrt();
            assert!(
                ((result.isd - exact) / exact).abs() < 2e-3,
                "variance {variance}: {} vs {exact}",
                result.isd
            );
            assert!(result.relative_error < 2e-3);
        }
    }

    #[test]
    fn zero_variance_is_kept_finite_by_eps() {
        let result = unit(1).compute(0.0).unwrap();
        assert!(result.isd.is_finite());
        assert!(result.isd > 100.0);
    }

    #[test]
    fn invalid_variance_is_rejected() {
        assert!(unit(1).compute(-1.0).is_err());
        assert!(unit(1).compute(f32::NAN).is_err());
        assert!(unit(1).compute(f32::INFINITY).is_err());
    }

    #[test]
    fn cycle_count_scales_with_iterations() {
        assert_eq!(unit(0).cycles(), 3);
        assert_eq!(unit(1).cycles(), 6);
        assert_eq!(unit(2).cycles(), 9);
        assert_eq!(unit(2).newton_iterations(), 2);
    }

    #[test]
    fn newton_step_converges_towards_the_exact_value() {
        let sri = unit(1);
        let x = 7.0f32;
        let exact = 1.0 / x.sqrt();
        let rough = exact * 1.05;
        let refined = sri.refine(x, rough);
        assert!((refined - exact).abs() < (rough - exact).abs());
    }
}
