//! Differential fusion-parity suite: the two fusion-site request shapes
//! (fused residual+norm, norm+matmul-epilogue) against their composed scalar
//! decompositions.
//!
//! The composed sequence — separate add → norm → matmul — is the oracle, and it
//! stays reachable two ways: on the scalar backend (which deliberately keeps the
//! composed [`NormBackend`](haan::backend::NormBackend) trait defaults) and on
//! any backend via [`HaanConfig::builder().fusion(false)`](haan::HaanConfig).
//! Tolerances mirror `tests/backend_dispatch.rs`:
//!
//! * **fused vs its own composed path** — bit-identical: the fused residual
//!   sweep reproduces the chunked statistics kernel's reduction order over the
//!   summed row, and the fused matmul epilogue preserves the blocked matmul's
//!   ascending-`k` accumulation order;
//! * **fused vs the scalar oracle** — ≤ 1e-5 relative on normalized rows, with
//!   a wider 1e-4 envelope after a matmul consumer (the per-element 1e-5
//!   statistics difference accumulates across the reduction);
//! * **accel-sim** — ≤ 5e-2 relative on normalized rows, and bit-identical to
//!   its own composed decomposition.

use haan::{AnchorState, BackendSelection, HaanConfig, HaanNormalizer, ParallelPolicy, SkipPlan};
use haan_accel::{AccelConfig, AccelSimBackend};
use haan_llm::norm::{NormSite, Normalizer};
use haan_llm::{Matrix, NormKind};
use haan_numerics::Format;
use std::sync::Arc;

/// Edge shapes `(rows, cols)`: a single element, rows straddling the 16-lane
/// chunk width, a non-lane-multiple width, and a multi-chunk-block width.
const EDGE_SHAPES: [(usize, usize); 5] = [(1, 1), (3, 7), (2, 16), (5, 13), (4, 127)];

fn site(layer_index: usize, kind: NormKind) -> NormSite {
    NormSite { layer_index, kind }
}

fn varied_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| (((i * 2654435761) % 1000) as f32 / 250.0 - 2.0) * scale)
        .collect();
    Matrix::from_vec(rows, cols, data).expect("consistent shape")
}

fn offset_matrix(rows: usize, cols: usize, scale: f32) -> Matrix {
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| (((i * 1597334677) % 997) as f32 / 300.0 - 1.5) * scale)
        .collect();
    Matrix::from_vec(rows, cols, data).expect("consistent shape")
}

fn affine(cols: usize) -> (Vec<f32>, Vec<f32>) {
    let gamma: Vec<f32> = (0..cols).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
    let beta: Vec<f32> = (0..cols).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();
    (gamma, beta)
}

fn config(backend: BackendSelection, format: Format, fusion: bool) -> HaanConfig {
    HaanConfig::builder()
        .label(format!("fusion parity {backend} fusion={fusion}"))
        .format(format)
        .backend(backend)
        .fusion(fusion)
        .build()
}

fn assert_close(a: &Matrix, b: &Matrix, tolerance: f32, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for row in 0..a.rows() {
        for (col, (x, y)) in a.row(row).iter().zip(b.row(row)).enumerate() {
            assert!(
                (x - y).abs() <= tolerance * y.abs().max(1.0),
                "{what}: row {row} col {col}: {x} vs {y}"
            );
        }
    }
}

/// Runs the fused residual+norm site, returning `(summed, normed)`.
fn run_residual(
    normalizer: &mut HaanNormalizer,
    kind: NormKind,
    input: &Matrix,
    residual: &Matrix,
    gamma: &[f32],
    beta: &[f32],
) -> (Matrix, Matrix) {
    let mut summed = Matrix::zeros(input.rows(), input.cols());
    let mut normed = Matrix::zeros(input.rows(), input.cols());
    normalizer.normalize_residual_into(
        site(0, kind),
        input,
        residual,
        gamma,
        beta,
        &mut summed,
        &mut normed,
    );
    (summed, normed)
}

/// Runs the fused norm+matmul-epilogue site over the given consumers.
fn run_epilogue(
    normalizer: &mut HaanNormalizer,
    kind: NormKind,
    input: &Matrix,
    gamma: &[f32],
    beta: &[f32],
    weights: &[&Matrix],
) -> Vec<Matrix> {
    let mut outs: Vec<Matrix> = weights
        .iter()
        .map(|w| Matrix::zeros(input.rows(), w.cols()))
        .collect();
    normalizer
        .normalize_matmul_into(site(0, kind), input, gamma, beta, weights, &mut outs)
        .expect("valid consumer shapes");
    outs
}

#[test]
fn fused_residual_norm_matches_the_composed_scalar_oracle() {
    for kind in [NormKind::LayerNorm, NormKind::RmsNorm] {
        for format in [Format::Fp32, Format::Fp16, Format::Int8] {
            for (rows, cols) in EDGE_SHAPES {
                let input = varied_matrix(rows, cols, 1.0);
                let residual = offset_matrix(rows, cols, 1.0);
                let (gamma, beta) = affine(cols);

                // Composed oracle: explicit add, then the plain batched scalar path.
                let mut oracle_sum = input.clone();
                oracle_sum.add_assign(&residual).unwrap();
                let mut oracle =
                    HaanNormalizer::new(config(BackendSelection::Scalar, format, false));
                let oracle_norm =
                    oracle.normalize_matrix(site(0, kind), &oracle_sum, &gamma, &beta);

                let mut fused = HaanNormalizer::new(config(BackendSelection::Fused, format, true));
                let (summed, normed) =
                    run_residual(&mut fused, kind, &input, &residual, &gamma, &beta);

                let label = format!("{kind} {format} {rows}x{cols}");
                // The streamed residual add is the same f32 add: bit-identical sums.
                assert_eq!(summed, oracle_sum, "summed stream diverged [{label}]");
                assert_close(
                    &normed,
                    &oracle_norm,
                    1e-5,
                    &format!("fused residual+norm vs oracle [{label}]"),
                );
            }
        }
    }
}

#[test]
fn fused_sites_are_bit_identical_to_their_own_composed_path() {
    // fusion(true) vs fusion(false) on the same backend must not change a single
    // bit: the fused kernels reproduce the composed reduction orders exactly.
    for kind in [NormKind::LayerNorm, NormKind::RmsNorm] {
        for (rows, cols) in EDGE_SHAPES {
            let input = varied_matrix(rows, cols, 1.0);
            let residual = offset_matrix(rows, cols, 1.0);
            let (gamma, beta) = affine(cols);
            let weights = [varied_matrix(cols, 5, 0.4), varied_matrix(cols, 33, 0.3)];
            let weight_refs: Vec<&Matrix> = weights.iter().collect();

            for backend in [BackendSelection::Fused, BackendSelection::Scalar] {
                let mut on = HaanNormalizer::new(config(backend, Format::Fp32, true));
                let mut off = HaanNormalizer::new(config(backend, Format::Fp32, false));
                let label = format!("{kind} {backend} {rows}x{cols}");

                let (sum_on, norm_on) =
                    run_residual(&mut on, kind, &input, &residual, &gamma, &beta);
                let (sum_off, norm_off) =
                    run_residual(&mut off, kind, &input, &residual, &gamma, &beta);
                assert_eq!(sum_on, sum_off, "residual sums diverged [{label}]");
                assert_eq!(norm_on, norm_off, "residual norms diverged [{label}]");

                let outs_on = run_epilogue(&mut on, kind, &input, &gamma, &beta, &weight_refs);
                let outs_off = run_epilogue(&mut off, kind, &input, &gamma, &beta, &weight_refs);
                assert_eq!(outs_on, outs_off, "epilogue outputs diverged [{label}]");
                assert_eq!(
                    on.telemetry(),
                    off.telemetry(),
                    "telemetry accounting diverged [{label}]"
                );
            }
        }
    }
}

#[test]
fn norm_matmul_epilogue_matches_the_composed_scalar_oracle() {
    for kind in [NormKind::LayerNorm, NormKind::RmsNorm] {
        for format in [Format::Fp32, Format::Fp16, Format::Int8] {
            for (rows, cols) in EDGE_SHAPES {
                let input = varied_matrix(rows, cols, 1.0);
                let (gamma, beta) = affine(cols);
                // Multi-consumer request: three weight matrices of distinct widths,
                // including a single-column consumer.
                let weights = [
                    varied_matrix(cols, 1, 0.5),
                    varied_matrix(cols, 5, 0.4),
                    varied_matrix(cols, 64, 0.2),
                ];
                let weight_refs: Vec<&Matrix> = weights.iter().collect();

                let mut oracle =
                    HaanNormalizer::new(config(BackendSelection::Scalar, format, false));
                let oracle_norm = oracle.normalize_matrix(site(0, kind), &input, &gamma, &beta);
                let oracle_outs: Vec<Matrix> = weight_refs
                    .iter()
                    .map(|w| oracle_norm.matmul(w).unwrap())
                    .collect();

                let mut fused = HaanNormalizer::new(config(BackendSelection::Fused, format, true));
                let outs = run_epilogue(&mut fused, kind, &input, &gamma, &beta, &weight_refs);

                for (n, (out, oracle_out)) in outs.iter().zip(&oracle_outs).enumerate() {
                    assert_close(
                        out,
                        oracle_out,
                        1e-4,
                        &format!("epilogue consumer {n} vs oracle [{kind} {format} {rows}x{cols}]"),
                    );
                }
            }
        }
    }
}

#[test]
fn fusion_sites_handle_constant_and_subnormal_rows() {
    for (rows, cols) in [(2, 1), (3, 13), (2, 127)] {
        // Constant summed rows: zero variance, the eps floor dominates. Subnormal
        // rows: the chunked kernel's f32 lanes underflow and the fused sweep must
        // take the same exact-path fallback the composed kernel takes.
        let constant = Matrix::from_vec(rows, cols, vec![1.625; rows * cols]).unwrap();
        let subnormal = varied_matrix(rows, cols, 1.0e-38);
        for (name, input) in [("constant", &constant), ("subnormal", &subnormal)] {
            let residual = input.clone();
            let gamma = vec![1.0f32; cols];
            let beta = vec![0.1f32; cols];
            let weights = [varied_matrix(cols, 7, 1.0)];
            let weight_refs: Vec<&Matrix> = weights.iter().collect();

            let mut on = HaanNormalizer::new(config(BackendSelection::Fused, Format::Fp32, true));
            let mut off = HaanNormalizer::new(config(BackendSelection::Fused, Format::Fp32, false));
            let label = format!("{name} {rows}x{cols}");

            let (sum_on, norm_on) = run_residual(
                &mut on,
                NormKind::LayerNorm,
                input,
                &residual,
                &gamma,
                &beta,
            );
            let (sum_off, norm_off) = run_residual(
                &mut off,
                NormKind::LayerNorm,
                input,
                &residual,
                &gamma,
                &beta,
            );
            assert_eq!(sum_on, sum_off, "sums diverged [{label}]");
            assert_eq!(norm_on, norm_off, "norms diverged [{label}]");
            for (a, b) in norm_on.as_slice().iter().zip(norm_off.as_slice()) {
                assert!(
                    a.is_finite() && b.is_finite(),
                    "non-finite output [{label}]"
                );
            }

            let outs_on = run_epilogue(
                &mut on,
                NormKind::LayerNorm,
                input,
                &gamma,
                &beta,
                &weight_refs,
            );
            let outs_off = run_epilogue(
                &mut off,
                NormKind::LayerNorm,
                input,
                &gamma,
                &beta,
                &weight_refs,
            );
            assert_eq!(outs_on, outs_off, "epilogue diverged [{label}]");
        }
    }
}

#[test]
fn parallel_backend_is_bit_identical_to_fused_at_fusion_sites() {
    for kind in [NormKind::LayerNorm, NormKind::RmsNorm] {
        for (rows, cols) in [(1, 1), (5, 13), (8, 127)] {
            let input = varied_matrix(rows, cols, 1.0);
            let residual = offset_matrix(rows, cols, 1.0);
            let (gamma, beta) = affine(cols);
            let weights = [varied_matrix(cols, 9, 0.4), varied_matrix(cols, 32, 0.3)];
            let weight_refs: Vec<&Matrix> = weights.iter().collect();

            let mut fused =
                HaanNormalizer::new(config(BackendSelection::Fused, Format::Fp32, true));
            let parallel_config = HaanConfig::builder()
                .format(Format::Fp32)
                .backend(BackendSelection::Parallel)
                .parallel(ParallelPolicy::Threads(3))
                .fusion(true)
                .build();
            let mut parallel = HaanNormalizer::new(parallel_config);
            let label = format!("{kind} {rows}x{cols}");

            let (sum_f, norm_f) = run_residual(&mut fused, kind, &input, &residual, &gamma, &beta);
            let (sum_p, norm_p) =
                run_residual(&mut parallel, kind, &input, &residual, &gamma, &beta);
            assert_eq!(sum_f, sum_p, "parallel residual sums diverged [{label}]");
            assert_eq!(norm_f, norm_p, "parallel residual norms diverged [{label}]");

            let outs_f = run_epilogue(&mut fused, kind, &input, &gamma, &beta, &weight_refs);
            let outs_p = run_epilogue(&mut parallel, kind, &input, &gamma, &beta, &weight_refs);
            assert_eq!(outs_f, outs_p, "parallel epilogue diverged [{label}]");
        }
    }
}

#[test]
fn quantized_skip_anchor_sites_round_trip_anchor_state_bit_identically() {
    // A quantized, subsampled sequence through an anchor site (0) and a skipped
    // site (1), both entered through the fused request shapes. The resulting
    // AnchorState must be bit-identical between the fused and composed paths, and
    // survive a snapshot/restore round trip.
    let plan = SkipPlan {
        start: 0,
        end: 2,
        decay: -0.04,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.3,
    };
    let build = |fusion: bool| {
        let config = HaanConfig::builder()
            .label("anchor round trip")
            .subsample(24)
            .format(Format::Fp16)
            .backend(BackendSelection::Fused)
            .fusion(fusion)
            .build();
        HaanNormalizer::new(config).with_plan(plan)
    };
    const ROWS: usize = 6;
    const COLS: usize = 48;
    let input = varied_matrix(ROWS, COLS, 1.3);
    let residual = offset_matrix(ROWS, COLS, 0.9);
    let (gamma, beta) = affine(COLS);
    let weights = [varied_matrix(COLS, 16, 0.4)];
    let weight_refs: Vec<&Matrix> = weights.iter().collect();

    let mut states: Vec<AnchorState> = Vec::new();
    let mut skipped_outs: Vec<(Matrix, Vec<Matrix>)> = Vec::new();
    for fusion in [true, false] {
        let mut normalizer = build(fusion);
        normalizer.begin_sequence();
        // Anchor site through the fused residual shape records per-row anchors.
        let mut summed = Matrix::zeros(ROWS, COLS);
        let mut normed = Matrix::zeros(ROWS, COLS);
        normalizer.normalize_residual_into(
            site(0, NormKind::LayerNorm),
            &input,
            &residual,
            &gamma,
            &beta,
            &mut summed,
            &mut normed,
        );
        let state = normalizer.anchor_state();
        assert!(!state.is_empty(), "anchor site must record anchors");
        assert_eq!(state.row_log_isds().len(), ROWS);

        // Round trip the state through from_parts, as a serving layer would.
        let rebuilt =
            AnchorState::from_parts(state.scalar_log_isd(), state.row_log_isds().to_vec());
        assert_eq!(rebuilt, state, "snapshot/restore must be lossless");
        normalizer.set_anchor_state(rebuilt);

        // Skipped site consumes the per-row anchors through both fused shapes.
        let mut skip_sum = Matrix::zeros(ROWS, COLS);
        let mut skip_norm = Matrix::zeros(ROWS, COLS);
        normalizer.normalize_residual_into(
            site(1, NormKind::LayerNorm),
            &input,
            &residual,
            &gamma,
            &beta,
            &mut skip_sum,
            &mut skip_norm,
        );
        let mut outs = vec![Matrix::zeros(ROWS, 16)];
        normalizer
            .normalize_matmul_into(
                site(1, NormKind::LayerNorm),
                &input,
                &gamma,
                &beta,
                &weight_refs,
                &mut outs,
            )
            .unwrap();
        assert!(normalizer.telemetry().skipped_isd >= 2 * ROWS as u64);
        states.push(normalizer.anchor_state());
        skipped_outs.push((skip_norm, outs));
    }
    assert_eq!(
        states[0], states[1],
        "anchor state diverged fused vs composed"
    );
    assert_eq!(
        skipped_outs[0], skipped_outs[1],
        "skipped-site outputs diverged fused vs composed"
    );
}

#[test]
fn accel_sim_fusion_sites_report_cycles_and_match_their_composed_path() {
    let fused_backend = Arc::new(AccelSimBackend::new(AccelConfig::haan_v1()));
    let composed_backend = Arc::new(AccelSimBackend::new(AccelConfig::haan_v1()));
    let (rows, cols) = (3, 96);
    let input = varied_matrix(rows, cols, 1.0);
    let residual = offset_matrix(rows, cols, 1.0);
    let (gamma, beta) = affine(cols);
    let weights = [varied_matrix(cols, 24, 0.3)];
    let weight_refs: Vec<&Matrix> = weights.iter().collect();

    let mut fused = HaanNormalizer::new(config(BackendSelection::AccelSim, Format::Fp16, true))
        .with_external_backend(fused_backend.clone());
    let mut composed = HaanNormalizer::new(config(BackendSelection::AccelSim, Format::Fp16, false))
        .with_external_backend(composed_backend.clone());

    let (sum_f, norm_f) = run_residual(
        &mut fused,
        NormKind::LayerNorm,
        &input,
        &residual,
        &gamma,
        &beta,
    );
    let (sum_c, norm_c) = run_residual(
        &mut composed,
        NormKind::LayerNorm,
        &input,
        &residual,
        &gamma,
        &beta,
    );
    // The simulated residual adders are exact f32 adders in front of the
    // statistics calculator: fusing changes no bit of the datapath result.
    assert_eq!(sum_f, sum_c, "accel-sim residual sums diverged");
    assert_eq!(norm_f, norm_c, "accel-sim residual norms diverged");

    let outs_f = run_epilogue(
        &mut fused,
        NormKind::LayerNorm,
        &input,
        &gamma,
        &beta,
        &weight_refs,
    );
    let outs_c = run_epilogue(
        &mut composed,
        NormKind::LayerNorm,
        &input,
        &gamma,
        &beta,
        &weight_refs,
    );
    assert_eq!(outs_f, outs_c, "accel-sim epilogue diverged");

    // Against the scalar software oracle the hardware envelope applies.
    let mut oracle_sum = input.clone();
    oracle_sum.add_assign(&residual).unwrap();
    let mut oracle = HaanNormalizer::new(config(BackendSelection::Scalar, Format::Fp16, false));
    let oracle_norm =
        oracle.normalize_matrix(site(0, NormKind::LayerNorm), &oracle_sum, &gamma, &beta);
    assert_close(&norm_f, &oracle_norm, 5e-2, "accel-sim residual vs oracle");

    // Timing honesty: both fused sites went through the pipeline model, and the
    // fused residual batch additionally charges the adder-bank fill, so the
    // fused run can never report fewer cycles than its composed twin.
    assert!(fused_backend.total_cycles() > 0);
    assert_eq!(fused_backend.batches(), composed_backend.batches());
    assert_eq!(
        fused_backend.total_cycles(),
        composed_backend.total_cycles() + AccelSimBackend::RESIDUAL_ADDER_FILL_CYCLES
    );
}
