//! Error type for the HAAN algorithm crate.

use std::fmt;

/// Errors produced by calibration, prediction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum HaanError {
    /// The calibration profiles were empty or inconsistent in length.
    InvalidProfiles(String),
    /// No layer range satisfied the skip-search constraints.
    NoSkippableRange {
        /// Number of layers in the profiles.
        num_layers: usize,
        /// The minimum gap that was requested.
        min_gap: usize,
    },
    /// A skip range was outside the model's layer count or reversed.
    InvalidSkipRange {
        /// The offending range.
        range: (usize, usize),
        /// Number of normalization layers available.
        num_layers: usize,
    },
    /// A configuration field was invalid (zero subsample length, bad iteration count…).
    InvalidConfig(String),
    /// An error bubbled up from the transformer substrate.
    Model(String),
    /// An error bubbled up from the numeric substrate.
    Numeric(String),
}

impl fmt::Display for HaanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HaanError::InvalidProfiles(msg) => write!(f, "invalid calibration profiles: {msg}"),
            HaanError::NoSkippableRange {
                num_layers,
                min_gap,
            } => write!(
                f,
                "no skippable range found over {num_layers} layers with minimum gap {min_gap}"
            ),
            HaanError::InvalidSkipRange { range, num_layers } => write!(
                f,
                "invalid skip range ({}, {}) for a model with {num_layers} normalization layers",
                range.0, range.1
            ),
            HaanError::InvalidConfig(msg) => write!(f, "invalid HAAN configuration: {msg}"),
            HaanError::Model(msg) => write!(f, "model error: {msg}"),
            HaanError::Numeric(msg) => write!(f, "numeric error: {msg}"),
        }
    }
}

impl std::error::Error for HaanError {}

impl From<haan_llm::LlmError> for HaanError {
    fn from(err: haan_llm::LlmError) -> Self {
        HaanError::Model(err.to_string())
    }
}

impl From<haan_numerics::NumericError> for HaanError {
    fn from(err: haan_numerics::NumericError) -> Self {
        HaanError::Numeric(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HaanError::InvalidProfiles("empty".into())
            .to_string()
            .contains("empty"));
        assert!(HaanError::NoSkippableRange {
            num_layers: 5,
            min_gap: 10
        }
        .to_string()
        .contains("minimum gap 10"));
        assert!(HaanError::InvalidSkipRange {
            range: (50, 60),
            num_layers: 20
        }
        .to_string()
        .contains("(50, 60)"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let llm_err = haan_llm::LlmError::InvalidConfig("x".into());
        assert!(matches!(HaanError::from(llm_err), HaanError::Model(_)));
        let num_err = haan_numerics::NumericError::EmptyInput;
        assert!(matches!(HaanError::from(num_err), HaanError::Numeric(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HaanError>();
    }
}
