//! Observability demo: the `obs_smoke` CI drill.
//!
//! Runs the same oversubscribed, fault-injected decode drill as
//! `examples/chaos.rs` — 8 prompts against a pool sized for 2, chunked
//! prefill, seeded mid-tick exhaustions — but with an [`haan_obs::Obs`] sink
//! installed on the engine. Afterwards it dumps the metric registry (JSON and
//! Prometheus renderings of the same [`haan_obs::ObsSnapshot`]) and replays
//! one preempted stream's full lifecycle from the flight recorder alone, then
//! asserts the key signals are present: batches and phase timings were
//! metered, pool exhaustion was counted, and the lifecycle events
//! (offer → admit/queue → chunk-drain → preempt → resume → finish) were all
//! recorded with the right correlation ID.
//!
//! Run with: `cargo run --release --example observability`

use haan::{BackendSelection, HaanConfig};
use haan_llm::{LlmError, ModelConfig, TransformerModel};
use haan_obs::{Obs, ObsSink, ObsSnapshot};
use haan_serve::{
    AdmissionPolicy, FaultInjector, FaultPlan, KvPoolPolicy, SeededFaults, ServeConfig,
    ServeEngine, StreamStatus,
};
use std::sync::Arc;

const SEED: u64 = 0x0B5E55;
const POOL_STREAMS: usize = 2;
const OVERLOAD: usize = 4;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 42)?;
    let config = model.config();
    let max = config.max_seq_len;
    let faults = Arc::new(SeededFaults::new(
        SEED,
        FaultPlan {
            exhaust_probability: 0.1,
            max_exhaustions: 4,
            slow_probability: 0.5,
            slow_us: 200,
            max_slow_batches: 3,
            ..Default::default()
        },
    ));
    let obs = Obs::shared(1 << 16);
    let mut engine = ServeEngine::start(ServeConfig {
        // A skip range (sites 3..=5 predicted from the site-2 anchor) so the
        // per-site skip counters and skip-rate gauges have something to show.
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            skip_range: Some((2, 5)),
            ..HaanConfig::unoptimized()
        },
        prefill_chunk_rows: 2,
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: POOL_STREAMS * max * config.num_blocks,
        },
        admission: AdmissionPolicy {
            queue_above: 0.75,
            max_queued: 3,
            retry_after_us: 500,
            reserve_rows: max,
        },
        faults: Some(Arc::clone(&faults) as Arc<dyn FaultInjector>),
        obs: Some(Arc::clone(&obs) as Arc<dyn ObsSink>),
        ..Default::default()
    });
    println!(
        "observability drill: pool sized for {POOL_STREAMS} full streams, {} offered, seed {SEED:#x}",
        POOL_STREAMS * OVERLOAD
    );

    let prompts: Vec<Vec<u32>> = (0..(POOL_STREAMS * OVERLOAD) as u32)
        .map(|i| vec![i % 8, (i + 3) % 8, (i * 5 + 1) % 8, (i + 1) % 8])
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine.decode_group(&model, &prompt_refs)?;
    loop {
        match group.step_all() {
            Ok(_) => {}
            Err(LlmError::KvPoolExhausted { .. }) => continue,
            Err(err) => return Err(err.into()),
        }
        let settled = (0..group.len())
            .all(|i| matches!(group.status(i), StreamStatus::Finished | StreamStatus::Shed));
        if settled {
            break;
        }
    }
    let stats = group.stats();
    assert!(stats.shed > 0, "the drill must shed under 4x overload");
    assert!(stats.preemptions > 0, "the drill must preempt");
    assert!(faults.injected().exhaustions > 0, "the injector must fire");

    // ---- The registry: one export, two renderings, lossless round-trip. ----
    let snapshot = obs.export();
    println!("\n== registry export (JSON) ==\n{}", snapshot.to_json());
    println!("\n== registry export (Prometheus) ==");
    for line in snapshot.to_prometheus().lines() {
        if !line.starts_with('#') && !line.contains("_bucket") {
            println!("{line}");
        }
    }
    let round_trip = ObsSnapshot::from_json(&snapshot.to_json()).expect("export parses back");
    assert_eq!(round_trip, snapshot, "JSON round-trip must be lossless");

    // Key metrics from every instrumented layer landed in the one registry.
    assert!(snapshot.counter("serve.batches").unwrap_or(0) > 0);
    assert!(snapshot.counter("pool.exhaustions").unwrap_or(0) > 0);
    assert!(snapshot.gauge("pool.pages_in_use").is_some());
    let ticks = snapshot.histogram("group.tick_rows").expect("tick shape");
    assert!(
        ticks.count > 0 && ticks.max > 1,
        "lockstep ticks batch rows"
    );
    for phase in [
        "serve.phase.gather_ns",
        "serve.phase.normalize_ns",
        "serve.phase.scatter_ns",
        "group.phase.advance_ns",
    ] {
        let h = snapshot.histogram(phase).expect("phase timings metered");
        assert!(h.count > 0, "{phase} must have samples");
    }
    assert!(
        snapshot
            .counters
            .iter()
            .any(|(name, rows)| name.starts_with("haan.skip.site_") && *rows > 0),
        "skipped sites must be counted per site"
    );
    assert!(
        snapshot
            .gauges
            .iter()
            .any(|(name, rate)| name.starts_with("haan.skip_rate.site_") && *rate > 0.99),
        "sites inside the skip range are always predicted"
    );

    // ---- The flight recorder: replay one preempted stream's lifecycle. ----
    let victim = (0..group.len())
        .map(|i| group.correlation_id(i))
        .find(|&corr| {
            let events = obs.recorder().stream_events(corr);
            events.iter().any(|e| e.kind.label() == "preempt")
                && events.last().is_some_and(|e| e.kind.label() == "finish")
        })
        .expect("some admitted stream was preempted and finished");
    println!("\n== lifecycle of preempted stream {victim} ==");
    print!("{}", obs.recorder().dump_stream(victim));
    let labels: Vec<&'static str> = obs
        .recorder()
        .stream_events(victim)
        .iter()
        .map(|e| e.kind.label())
        .collect();
    for key in ["offer", "preempt", "resume", "finish"] {
        assert!(labels.contains(&key), "{key} missing from {labels:?}");
    }
    let engine_events = obs.recorder().events();
    for key in ["batch_dispatch", "pool_exhausted", "fault_injected"] {
        assert!(
            engine_events.iter().any(|e| e.kind.label() == key),
            "{key} missing from the engine-wide event stream"
        );
    }
    println!(
        "\nrecorder: {} events held ({} appended, {} dropped) ✔",
        obs.recorder().len(),
        obs.recorder().appended(),
        obs.recorder().dropped()
    );

    drop(group);
    engine.shutdown();
    Ok(())
}
