//! The metrics registry: lock-cheap counters, gauges, and log-scale histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s over
//! atomics: the registry mutex is touched only at registration time, never on
//! the record path. Metric names are hierarchical dot-paths
//! (`serve.queue_wait_us`, `pool.pages_in_use`, `haan.skip_rate.site_0`);
//! [`ObsRegistry::export`] snapshots every metric sorted by name, and the
//! snapshot renders as JSON (round-trippable via [`ObsSnapshot::from_json`])
//! or Prometheus-style text.

use crate::json::JsonValue;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sub-bucket resolution of [`Histogram`]: `2^SUB_BITS` buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per power of two (8 → worst-case quantile error ≤ 1/8).
const SUB: usize = 1 << SUB_BITS;
/// Total fixed bucket count covering the whole `u64` range.
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying atomic; increments are a single relaxed
/// `fetch_add`, no lock.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge handle holding an `f64` (bit-cast into an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Self {
        let gauge = Gauge(Arc::default());
        gauge.set(0.0);
        gauge
    }
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log-scale histogram over `u64` samples.
///
/// Values below `2·2^SUB_BITS` (= 16) get exact unit-width buckets; above
/// that, each power-of-two octave splits into 8 equal sub-buckets, so a
/// quantile estimate is off by at most a factor `1/8` of the true value —
/// constant memory (one atomic per bucket) regardless of sample count,
/// replacing the bounded sorted-window percentile vector the serving
/// telemetry used before.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Saturating sum of all recorded samples (for mean estimates).
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of `value` (exact below 16, log-scale with [`SUB`]
/// sub-buckets per octave above).
fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as usize;
        let shift = msb - SUB_BITS as usize;
        let sub = ((value >> shift) as usize) & (SUB - 1);
        (msb - SUB_BITS as usize + 1) * SUB + sub
    }
}

/// Inclusive lower bound of bucket `index` (inverse of [`bucket_index`]).
fn bucket_lower(index: usize) -> u64 {
    if index < 2 * SUB {
        index as u64
    } else {
        let octave = index / SUB;
        let sub = index % SUB;
        ((SUB + sub) as u64) << (octave - 1)
    }
}

/// Inclusive upper bound of bucket `index`.
fn bucket_upper(index: usize) -> u64 {
    if index + 1 < NUM_BUCKETS {
        bucket_lower(index + 1) - 1
    } else {
        u64::MAX
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a multi-day run must degrade the mean,
        // not corrupt it.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |sum| {
                Some(sum.saturating_add(value))
            });
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot of the histogram (consistent enough for reporting: buckets are
    /// read one by one while writers may proceed).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let count = c.load(Ordering::Relaxed);
                (count > 0).then_some((bucket_lower(i), count))
            })
            .collect();
        let count = buckets.iter().map(|&(_, c)| c).sum();
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) — midpoint of the bucket where
    /// the cumulative count crosses `q · count`, exact for values below 16.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A point-in-time view of one [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(inclusive_lower_bound, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile of the snapshot; see [`Histogram::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(lower, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                let upper = bucket_upper(bucket_index(lower)).min(self.max);
                let mid = lower + (upper - lower) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The process-wide metric registry: named counters, gauges, and histograms.
///
/// ```
/// use haan_obs::ObsRegistry;
///
/// let registry = ObsRegistry::new();
/// registry.counter("serve.batches").add(3);
/// registry.gauge("pool.pages_in_use").set(5.0);
/// registry.histogram("serve.queue_wait_us").record(120);
/// let snapshot = registry.export();
/// assert_eq!(snapshot.counter("serve.batches"), Some(3));
/// let round_trip = haan_obs::ObsSnapshot::from_json(&snapshot.to_json()).unwrap();
/// assert_eq!(round_trip, snapshot);
/// ```
#[derive(Debug, Default)]
pub struct ObsRegistry {
    inner: Mutex<RegistryInner>,
}

impl ObsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = crate::lock_recover(&self.inner);
        match inner.counters.get(name) {
            Some(counter) => counter.clone(),
            None => {
                let counter = Counter::default();
                inner.counters.insert(name.to_string(), counter.clone());
                counter
            }
        }
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = crate::lock_recover(&self.inner);
        match inner.gauges.get(name) {
            Some(gauge) => gauge.clone(),
            None => {
                let gauge = Gauge::default();
                inner.gauges.insert(name.to_string(), gauge.clone());
                gauge
            }
        }
    }

    /// The histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = crate::lock_recover(&self.inner);
        match inner.histograms.get(name) {
            Some(histogram) => Arc::clone(histogram),
            None => {
                let histogram = Arc::new(Histogram::default());
                inner
                    .histograms
                    .insert(name.to_string(), Arc::clone(&histogram));
                histogram
            }
        }
    }

    /// Snapshot of every registered metric, sorted by name.
    #[must_use]
    pub fn export(&self) -> ObsSnapshot {
        let inner = crate::lock_recover(&self.inner);
        ObsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time export of an [`ObsRegistry`]: plain data, renderable as
/// JSON (lossless, see [`ObsSnapshot::from_json`]) or Prometheus-style text.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsSnapshot {
    /// `(name, value)` per counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` per histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl ObsSnapshot {
    /// The exported value of counter `name`, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The exported value of gauge `name`, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The exported snapshot of histogram `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a compact JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let histograms = self.histograms.iter().map(|(name, h)| {
            (
                name.clone(),
                JsonValue::object([
                    ("count", JsonValue::Number(h.count as f64)),
                    ("sum", JsonValue::Number(h.sum as f64)),
                    ("min", JsonValue::Number(h.min as f64)),
                    ("max", JsonValue::Number(h.max as f64)),
                    ("p50", JsonValue::Number(h.quantile(0.50) as f64)),
                    ("p90", JsonValue::Number(h.quantile(0.90) as f64)),
                    ("p99", JsonValue::Number(h.quantile(0.99) as f64)),
                    (
                        "buckets",
                        JsonValue::array(h.buckets.iter().map(|&(lower, count)| {
                            JsonValue::array([
                                JsonValue::Number(lower as f64),
                                JsonValue::Number(count as f64),
                            ])
                        })),
                    ),
                ]),
            )
        });
        JsonValue::object([
            (
                "counters",
                JsonValue::object(
                    self.counters
                        .iter()
                        .map(|(name, v)| (name.clone(), JsonValue::Number(*v as f64))),
                ),
            ),
            (
                "gauges",
                JsonValue::object(
                    self.gauges
                        .iter()
                        .map(|(name, v)| (name.clone(), JsonValue::Number(*v))),
                ),
            ),
            ("histograms", JsonValue::object(histograms)),
        ])
        .render()
    }

    /// Parses a document produced by [`ObsSnapshot::to_json`] back into a
    /// snapshot (the derived quantile fields are recomputed from the buckets,
    /// so `from_json(to_json(s)) == s`).
    ///
    /// # Errors
    ///
    /// Returns a description when the document is not valid JSON or does not
    /// have the snapshot shape.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(json)?;
        let object = |key: &str| -> Result<&[(String, JsonValue)], String> {
            match doc.get(key) {
                Some(JsonValue::Object(pairs)) => Ok(pairs),
                _ => Err(format!("missing {key:?} object")),
            }
        };
        let counters = object("counters")?
            .iter()
            .map(|(name, v)| {
                v.as_u64()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| format!("counter {name:?} is not a u64"))
            })
            .collect::<Result<_, _>>()?;
        let gauges = object("gauges")?
            .iter()
            .map(|(name, v)| {
                v.as_number()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| format!("gauge {name:?} is not a number"))
            })
            .collect::<Result<_, _>>()?;
        let histograms = object("histograms")?
            .iter()
            .map(|(name, h)| {
                let field = |key: &str| -> Result<u64, String> {
                    h.get(key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("histogram {name:?} field {key:?} is not a u64"))
                };
                let buckets = match h.get("buckets") {
                    Some(JsonValue::Array(entries)) => entries
                        .iter()
                        .map(|entry| match entry {
                            JsonValue::Array(pair) if pair.len() == 2 => pair[0]
                                .as_u64()
                                .zip(pair[1].as_u64())
                                .ok_or_else(|| format!("histogram {name:?} bucket is not u64")),
                            _ => Err(format!("histogram {name:?} bucket is not a pair")),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(format!("histogram {name:?} has no bucket array")),
                };
                Ok((
                    name.clone(),
                    HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    },
                ))
            })
            .collect::<Result<_, String>>()?;
        Ok(Self {
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders the snapshot as Prometheus-style exposition text (dots in
    /// metric names become underscores; histograms emit cumulative
    /// `_bucket{le=…}` series plus `_sum` and `_count`).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let sanitize = |name: &str| name.replace('.', "_");
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for &(lower, count) in &h.buckets {
                cumulative += count;
                let le = bucket_upper(bucket_index(lower));
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse_and_contiguous() {
        // Every bucket's bounds map back to its own index, and consecutive
        // buckets tile the line without gaps.
        for index in 0..NUM_BUCKETS {
            let lower = bucket_lower(index);
            let upper = bucket_upper(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            assert_eq!(bucket_index(upper), index, "upper bound of {index}");
            assert!(lower <= upper);
            if index + 1 < NUM_BUCKETS {
                assert_eq!(bucket_upper(index) + 1, bucket_lower(index + 1));
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact_and_large_values_stay_within_an_eighth() {
        let h = Histogram::default();
        for v in 0..16u64 {
            h.record(v);
        }
        // Values below 16 occupy exact unit buckets.
        for v in 0..16u64 {
            let snapshot = h.snapshot();
            assert!(snapshot.buckets.contains(&(v, 1)));
        }
        let h = Histogram::default();
        h.record(1_000_000);
        let q = h.quantile(0.5);
        let err = (q as f64 - 1_000_000.0).abs() / 1_000_000.0;
        assert!(err <= 1.0 / 8.0, "quantile {q} err {err}");
    }

    #[test]
    fn quantiles_clamp_to_observed_min_and_max() {
        let h = Histogram::default();
        h.record(1000);
        // A single sample: every quantile is that sample's bucket, clamped to
        // the observed extremes so it can never exceed what was recorded.
        assert_eq!(h.quantile(0.0), 1000);
        assert_eq!(h.quantile(0.5), 1000);
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().sum, u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn registry_handles_are_shared_and_export_is_sorted() {
        let registry = ObsRegistry::new();
        let a = registry.counter("z.last");
        let b = registry.counter("z.last");
        a.inc();
        b.add(2);
        registry.counter("a.first").inc();
        registry.gauge("mid.gauge").set(1.5);
        registry.histogram("h.hist").record(7);
        let snapshot = registry.export();
        assert_eq!(snapshot.counter("z.last"), Some(3));
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        assert_eq!(snapshot.gauge("mid.gauge"), Some(1.5));
        assert_eq!(snapshot.histogram("h.hist").map(|h| h.count), Some(1));
        assert_eq!(snapshot.counter("missing"), None);
        assert_eq!(snapshot.gauge("missing"), None);
        assert!(snapshot.histogram("missing").is_none());
    }

    #[test]
    fn export_round_trips_through_json() {
        let registry = ObsRegistry::new();
        registry.counter("serve.batches").add(42);
        registry.gauge("pool.pages_in_use").set(12.5);
        registry.gauge("haan.skip_rate.site_0").set(0.75);
        let h = registry.histogram("serve.queue_wait_us");
        for v in [0, 1, 15, 16, 1000, 123_456_789, u64::MAX] {
            h.record(v);
        }
        let snapshot = registry.export();
        let parsed = ObsSnapshot::from_json(&snapshot.to_json()).expect("parses");
        assert_eq!(parsed, snapshot);
        // And the parse surface rejects junk.
        assert!(ObsSnapshot::from_json("{}").is_err());
        assert!(ObsSnapshot::from_json("[1]").is_err());
        assert!(ObsSnapshot::from_json(
            "{\"counters\":{\"a\":-1},\"gauges\":{},\"histograms\":{}}"
        )
        .is_err());
    }

    #[test]
    fn prometheus_text_has_cumulative_buckets() {
        let registry = ObsRegistry::new();
        registry.counter("serve.batches").add(2);
        registry.gauge("pool.pages_in_use").set(3.0);
        let h = registry.histogram("serve.queue_wait_us");
        h.record(1);
        h.record(1);
        h.record(100);
        let text = registry.export().to_prometheus();
        assert!(text.contains("# TYPE serve_batches counter\nserve_batches 2"));
        assert!(text.contains("# TYPE pool_pages_in_use gauge\npool_pages_in_use 3"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"1\"} 2"));
        assert!(text.contains("serve_queue_wait_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("serve_queue_wait_us_count 3"));
        assert!(text.contains("serve_queue_wait_us_sum 102"));
    }

    #[test]
    fn histogram_mean_is_exact_until_saturation() {
        let h = Histogram::default();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let snapshot = h.snapshot();
        assert!((snapshot.mean() - 20.0).abs() < 1e-12);
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }
}
