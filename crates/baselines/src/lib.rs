//! Baseline normalization engines the paper compares HAAN against.
//!
//! * [`dfx`] — the LayerNorm engine of the DFX multi-FPGA appliance (MICRO 2022): a
//!   sequential vector engine that computes mean, variance and the normalized output in
//!   three passes per token with an exact FP32 square root, and does not overlap
//!   consecutive tokens.
//! * [`sole`] — SOLE (ICCAD 2023): hardware/software co-designed LayerNorm with
//!   dynamically compressed statistics; single-pass statistics, pipelined across tokens,
//!   but no cross-layer skipping or subsampling.
//! * [`mhaa`] — the multi-head-attention accelerator of Lu et al. (SOCC 2020): a HAAN-like
//!   statistics datapath but without inter-token pipelining between the statistics and
//!   normalization stages.
//! * [`gpu`] — the GPU baseline (framework-level LayerNorm kernels on an A100-class part).
//! * [`e2e`] — the end-to-end composition model used for the ~1.11× full-model speedup
//!   claim of Section V-B.
//!
//! All engines implement [`NormEngine`], so the figure-regeneration binaries treat HAAN
//! and every baseline uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dfx;
pub mod e2e;
pub mod engine;
pub mod gpu;
pub mod mhaa;
pub mod sole;

pub use dfx::DfxEngine;
pub use e2e::EndToEndModel;
pub use engine::{compare_engines, EngineComparison, NormEngine, NormWorkload};
pub use gpu::GpuNormEngine;
pub use mhaa::MhaaEngine;
pub use sole::SoleEngine;
