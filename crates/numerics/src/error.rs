//! Error type shared by the numeric substrate.

use std::fmt;

/// Errors produced by numeric conversions and statistics routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// A value could not be represented in the requested fixed-point format.
    FixedOverflow {
        /// The value that overflowed.
        value: f64,
        /// The format it was being converted into.
        format: crate::fixed::QFormat,
    },
    /// Two fixed-point operands had incompatible Q formats.
    QFormatMismatch {
        /// Format of the left operand.
        lhs: crate::fixed::QFormat,
        /// Format of the right operand.
        rhs: crate::fixed::QFormat,
    },
    /// A statistics routine was asked to operate on an empty slice.
    EmptyInput,
    /// A subsample length was zero or exceeded the input length.
    InvalidSubsample {
        /// Requested subsample length.
        requested: usize,
        /// Available input length.
        available: usize,
    },
    /// The inverse square root of a non-positive value was requested.
    NonPositive(f64),
    /// A batched kernel was handed buffers of inconsistent lengths.
    LengthMismatch {
        /// Which buffer was inconsistent.
        what: &'static str,
        /// The length the kernel expected.
        expected: usize,
        /// The length it received.
        actual: usize,
    },
    /// A quantizer was constructed with a non-finite or non-positive scale.
    InvalidScale(f32),
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericError::FixedOverflow { value, format } => {
                write!(
                    f,
                    "value {value} does not fit in fixed-point format {format}"
                )
            }
            NumericError::QFormatMismatch { lhs, rhs } => {
                write!(f, "fixed-point format mismatch: {lhs} vs {rhs}")
            }
            NumericError::EmptyInput => write!(f, "input slice is empty"),
            NumericError::InvalidSubsample {
                requested,
                available,
            } => write!(
                f,
                "invalid subsample length {requested} for input of length {available}"
            ),
            NumericError::NonPositive(v) => {
                write!(f, "inverse square root requires a positive input, got {v}")
            }
            NumericError::LengthMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "length mismatch: {what} has {actual} elements, expected {expected}"
            ),
            NumericError::InvalidScale(s) => write!(f, "invalid quantization scale {s}"),
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::QFormat;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = NumericError::FixedOverflow {
            value: 1.0e9,
            format: QFormat::new(16, 16),
        };
        let msg = err.to_string();
        assert!(msg.contains("1000000000"));
        assert!(msg.starts_with("value"));

        assert_eq!(NumericError::EmptyInput.to_string(), "input slice is empty");
        assert!(NumericError::NonPositive(-1.0).to_string().contains("-1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
