//! Integration suite of the serving layer: many concurrent client threads
//! streaming through one `ServeEngine` must produce *bit-identical* results to each
//! client running alone on a private `HaanNormalizer`, while the scheduler actually
//! coalesces their requests into shared batches.
//!
//! Determinism rests on two engine contracts: row kernels are row-local (the fused
//! backend normalizes every row independently), and skip-anchor state is per
//! session (each request round-trips its own `AnchorState`), so batch composition
//! can never leak one stream's statistics into another.

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::norm::{NormSite, Normalizer};
use haan_llm::{Matrix, NormKind, StreamingModel, TransformerModel};
use haan_numerics::Format;
use haan_serve::{QueueOrdering, SchedulerPolicy, ServeConfig, ServeEngine};

const COLS: usize = 64;
const ROWS_PER_REQUEST: usize = 2;
const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 32;

/// Layers cycle anchor → skipped → skipped → plain, exercising every anchor-state
/// transition on every client.
const LAYER_CYCLE: usize = 4;

fn skip_plan() -> SkipPlan {
    SkipPlan {
        start: 0,
        end: 2,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    }
}

fn haan_config() -> HaanConfig {
    // The fused backend is the deterministic hot path: bit-identical whether rows
    // arrive as one caller's matrix or as a scheduler-assembled batch.
    HaanConfig::builder()
        .label("serving integration")
        .subsample(32)
        .format(Format::Fp16)
        .backend(BackendSelection::Fused)
        .build()
}

fn site(layer_index: usize) -> NormSite {
    NormSite {
        layer_index,
        kind: NormKind::LayerNorm,
    }
}

/// Deterministic per-client, per-request input block (each client has a distinct
/// scale, so anchor mix-ups would be loud).
fn client_input(client: usize, request: usize) -> Matrix {
    let scale = 1.0 + client as f32 * 0.75;
    let data: Vec<f32> = (0..ROWS_PER_REQUEST * COLS)
        .map(|i| {
            let x = (i + request * 131 + client * 7919) as u64;
            (((x * 2654435761) % 1000) as f32 / 250.0 - 2.0) * scale
        })
        .collect();
    Matrix::from_vec(ROWS_PER_REQUEST, COLS, data).expect("consistent shape")
}

fn client_workload(client: usize) -> Vec<(NormSite, Matrix)> {
    (0..REQUESTS_PER_CLIENT)
        .map(|request| (site(request % LAYER_CYCLE), client_input(client, request)))
        .collect()
}

#[test]
fn eight_concurrent_clients_match_sequential_execution_bit_for_bit() {
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(skip_plan()),
        scheduler: SchedulerPolicy {
            // 8 clients × 2 rows: a full phase-aligned round dispatches immediately;
            // stragglers flush after 3 ms so drifting clients still coalesce.
            max_batch_rows: CLIENTS * ROWS_PER_REQUEST,
            max_wait_us: 3_000,
            ordering: QueueOrdering::Fifo,
        },
        ..Default::default()
    });
    let gamma: Vec<f32> = (0..COLS).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
    let beta: Vec<f32> = (0..COLS).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let mut session = engine.session();
            let gamma = gamma.clone();
            let beta = beta.clone();
            std::thread::spawn(move || {
                client_workload(client)
                    .into_iter()
                    .map(|(site, input)| {
                        session
                            .normalize(site, &input, &gamma, &beta)
                            .expect("serving round trip")
                    })
                    .collect::<Vec<Matrix>>()
            })
        })
        .collect();
    let served: Vec<Vec<Matrix>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread panicked"))
        .collect();

    // Per-client sequential oracle: a private normalizer walking the same calls.
    for (client, outputs) in served.iter().enumerate() {
        let mut private = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
        for (request, ((site, input), out)) in
            client_workload(client).iter().zip(outputs).enumerate()
        {
            let expected = private.normalize_matrix(*site, input, &gamma, &beta);
            assert_eq!(
                out, &expected,
                "client {client} request {request} diverged from sequential execution"
            );
        }
    }

    let stats = engine.stats();
    assert_eq!(stats.requests, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(
        stats.rows,
        (CLIENTS * REQUESTS_PER_CLIENT * ROWS_PER_REQUEST) as u64
    );
    assert!(
        stats.mean_batch_occupancy_requests() > 1.0,
        "no coalescing happened: {:.2} requests/batch over {} batches",
        stats.mean_batch_occupancy_requests(),
        stats.batches
    );
    assert!(stats.mean_batch_occupancy_rows() > 1.0);
    assert!(stats.p50_queue_wait_us <= stats.p99_queue_wait_us);
    engine.shutdown();
}

#[test]
fn sessions_with_different_histories_never_share_predicted_isds() {
    // Two sessions interleave on one engine with wildly different activation
    // scales. The skipped site's prediction must come from each session's own
    // anchor: any cross-talk would show up against the private references.
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(skip_plan()),
        ..Default::default()
    });
    let gamma = vec![1.0f32; COLS];
    let beta = vec![0.0f32; COLS];
    let mut quiet = engine.session();
    let mut loud = engine.session();
    let quiet_input = client_input(0, 0);
    let loud_input = {
        let scaled: Vec<f32> = client_input(0, 0)
            .as_slice()
            .iter()
            .map(|v| v * 16.0)
            .collect();
        Matrix::from_vec(ROWS_PER_REQUEST, COLS, scaled).expect("consistent shape")
    };

    // Interleaved: anchor site for both, then skipped site for both.
    let quiet_anchor = quiet
        .normalize(site(0), &quiet_input, &gamma, &beta)
        .unwrap();
    let loud_anchor = loud.normalize(site(0), &loud_input, &gamma, &beta).unwrap();
    let quiet_skip = quiet
        .normalize(site(1), &quiet_input, &gamma, &beta)
        .unwrap();
    let loud_skip = loud.normalize(site(1), &loud_input, &gamma, &beta).unwrap();
    assert_ne!(
        quiet.anchor_state(),
        loud.anchor_state(),
        "different histories must leave different anchors"
    );

    for (name, input, anchor_out, skip_out) in [
        ("quiet", &quiet_input, quiet_anchor, quiet_skip),
        ("loud", &loud_input, loud_anchor, loud_skip),
    ] {
        let mut private = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
        let expected_anchor = private.normalize_matrix(site(0), input, &gamma, &beta);
        let expected_skip = private.normalize_matrix(site(1), input, &gamma, &beta);
        assert_eq!(anchor_out, expected_anchor, "{name}: anchor site diverged");
        assert_eq!(skip_out, expected_skip, "{name}: skipped site diverged");
    }
    engine.shutdown();
}

#[test]
fn streaming_decode_through_sessions_matches_private_normalizers() {
    // Two decode streams share the engine through sessions-as-normalizers; each
    // must generate exactly the tokens of a private HAAN normalizer decode.
    let model = TransformerModel::new(&haan_llm::ModelConfig::tiny_test(), 17).unwrap();
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        plan: Some(skip_plan()),
        ..Default::default()
    });
    let prompts: [&[u32]; 2] = [&[1, 9, 17], &[4, 8, 15, 16]];
    for prompt in prompts {
        let mut session = engine.session();
        let mut served_stream = StreamingModel::new(&model, prompt).unwrap();
        let served = served_stream.decode(5, &mut session).unwrap();

        let mut private = HaanNormalizer::new(haan_config()).with_plan(skip_plan());
        let mut private_stream = StreamingModel::new(&model, prompt).unwrap();
        let expected = private_stream.decode(5, &mut private).unwrap();
        assert_eq!(served, expected, "prompt {prompt:?} decoded differently");
        assert_eq!(served_stream.generated(), expected.as_slice());
    }
    assert!(engine.stats().requests > 0);
    engine.shutdown();
}

#[test]
fn shutdown_drains_queued_requests_and_coalesces_them() {
    // A policy that never dispatches on its own: requests pile up in the
    // scheduler until shutdown, which must still answer every one of them —
    // and, since they are compatible, as a single coalesced batch.
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: haan_config(),
        scheduler: SchedulerPolicy {
            max_batch_rows: usize::MAX,
            max_wait_us: u64::MAX,
            ordering: QueueOrdering::Fifo,
        },
        ..Default::default()
    });
    let params = engine.intern_params(&[1.0; COLS], &[0.0; COLS]);
    let pending: Vec<_> = (0..3)
        .map(|request| {
            engine
                .submit(haan_serve::NormRequest {
                    site: site(0),
                    cols: COLS,
                    data: client_input(request, request).as_slice().to_vec(),
                    params: params.clone(),
                    anchors: haan::AnchorState::new(),
                    deadline_us: None,
                })
                .expect("submission while open")
        })
        .collect();
    engine.shutdown();
    for (request, handle) in pending.into_iter().enumerate() {
        let response = handle.wait().expect("drained on shutdown");
        assert_eq!(
            response.data.len(),
            ROWS_PER_REQUEST * COLS,
            "request {request}"
        );
    }
    let stats = engine.stats();
    assert_eq!(stats.requests, 3);
    assert_eq!(
        stats.batches, 1,
        "compatible drained requests must coalesce"
    );
    assert_eq!(stats.mean_batch_occupancy_requests(), 3.0);
}
