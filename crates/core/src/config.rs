//! HAAN configuration and the per-model presets evaluated in the paper.

use crate::error::HaanError;
use haan_numerics::Format;

/// How the batched normalization engine distributes rows across threads.
///
/// Row kernels are independent, so the parallel path is bit-identical to the
/// sequential one — the policy only trades latency against thread overhead. The
/// default is [`ParallelPolicy::Sequential`]: small models lose more to thread
/// startup than they gain, and determinism-sensitive callers get the simplest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ParallelPolicy {
    /// Process every row on the calling thread. This is a hard guarantee: no layer
    /// of the engine (including [`BackendSelection::Auto`]) spawns worker threads
    /// behind a `Sequential` policy.
    #[default]
    Sequential,
    /// Split rows across up to `n` scoped worker threads (values of 0 or 1 fall back
    /// to the sequential path).
    Threads(usize),
    /// Use the host's available parallelism when the batch is large enough to
    /// amortise thread startup, otherwise stay sequential. The threshold here is
    /// format-blind (a policy knows nothing about operand formats);
    /// [`BackendSelection::Auto`] layers the format-aware variant
    /// ([`BackendSelection::auto_parallel_elements`]) on top of this policy.
    Auto,
}

/// Minimum batch rows before any auto heuristic fans out to worker threads.
const AUTO_PARALLEL_MIN_ROWS: usize = 4;

/// Elements-per-batch threshold for fanning out with untouched-FP32 statistics.
/// Thread startup costs tens of microseconds; only fan out when each worker gets a
/// meaningful slice of work. The format-aware variant is
/// [`BackendSelection::auto_parallel_elements`].
const AUTO_PARALLEL_ELEMENTS_FP32: usize = 64 * 1024;

impl ParallelPolicy {
    /// Number of worker threads to use for a `rows × cols` batch (1 = sequential).
    #[must_use]
    pub fn worker_count(&self, rows: usize, cols: usize) -> usize {
        let limit = match self {
            ParallelPolicy::Sequential => 1,
            ParallelPolicy::Threads(n) => (*n).max(1),
            ParallelPolicy::Auto => {
                if rows >= AUTO_PARALLEL_MIN_ROWS
                    && rows.saturating_mul(cols) >= AUTO_PARALLEL_ELEMENTS_FP32
                {
                    std::thread::available_parallelism().map_or(1, usize::from)
                } else {
                    1
                }
            }
        };
        limit.min(rows.max(1))
    }
}

/// Which execution backend the batched normalization engine dispatches to.
///
/// The policy side of HAAN (skipping, subsampling, quantization) is independent of
/// *how* the row sweep executes; this enum picks the execution substrate (see
/// [`crate::backend`] for the backend implementations and `ARCHITECTURE.md` for the
/// dispatch diagram). The default is [`BackendSelection::Auto`], which chooses
/// between the fused and row-parallel software paths from the batch shape, the
/// operand format and the configured [`ParallelPolicy`] — it never auto-selects the
/// scalar oracle (strictly slower) or the accelerator simulator (a functional/timing
/// model, not a fast path), and it never parallelizes a
/// [`ParallelPolicy::Sequential`] configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendSelection {
    /// Shape/format heuristic over the fused and parallel backends (see
    /// [`BackendSelection::resolve`]).
    #[default]
    Auto,
    /// Always the two-pass scalar oracle (`ScalarBackend`).
    Scalar,
    /// Always the fused sequential kernel (`FusedBackend`).
    Fused,
    /// Always the row-parallel path (`ParallelBackend`), honoring
    /// [`HaanConfig::parallel`]; with [`ParallelPolicy::Sequential`] it degrades to
    /// the fused sequential sweep.
    Parallel,
    /// The cycle-level accelerator simulator. Requires the external backend to be
    /// registered first (`haan_accel::AccelSimBackend::install()`) or attached with
    /// `HaanNormalizer::with_external_backend`.
    AccelSim,
}

/// The backend a [`BackendSelection`] resolved to for one concrete batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The two-pass scalar oracle.
    Scalar,
    /// The fused sequential kernel.
    Fused,
    /// The row-parallel path.
    Parallel,
    /// The accelerator simulator.
    AccelSim,
}

impl BackendSelection {
    /// Elements-per-batch threshold above which [`BackendSelection::Auto`] fans out
    /// to the row-parallel backend. Quantized statistics (FP16 / INT8 operands) cost
    /// roughly twice as much per element as the untouched-FP32 path, so thread
    /// startup amortises at half the batch size.
    #[must_use]
    pub fn auto_parallel_elements(format: Format) -> usize {
        match format {
            Format::Fp32 => AUTO_PARALLEL_ELEMENTS_FP32,
            // Quantized statistics paths (FP16 / INT8 / fixed point) pay the operand
            // round trip per element.
            _ => AUTO_PARALLEL_ELEMENTS_FP32 / 2,
        }
    }

    /// Resolves the selection for one concrete `rows × cols` batch.
    ///
    /// Explicit selections map to their backend unconditionally. `Auto` picks:
    ///
    /// 1. [`BackendKind::Parallel`] when the configured [`ParallelPolicy`] already
    ///    asks for more than one worker on this shape;
    /// 2. [`BackendKind::Parallel`] when the policy is [`ParallelPolicy::Auto`] and
    ///    the batch clears the *format-aware* threshold
    ///    ([`BackendSelection::auto_parallel_elements`], with at least 4 rows) even
    ///    though the policy's own format-blind threshold did not fan out — results
    ///    are bit-identical, so this only changes latency;
    /// 3. [`BackendKind::Fused`] otherwise. In particular
    ///    [`ParallelPolicy::Sequential`] is always honored: `Auto` never spawns
    ///    threads behind an explicitly sequential configuration.
    ///
    /// This is a pure function of the inputs so the heuristic is unit-testable.
    #[must_use]
    pub fn resolve(
        self,
        rows: usize,
        cols: usize,
        format: Format,
        parallel: ParallelPolicy,
    ) -> BackendKind {
        match self {
            BackendSelection::Scalar => BackendKind::Scalar,
            BackendSelection::Fused => BackendKind::Fused,
            BackendSelection::Parallel => BackendKind::Parallel,
            BackendSelection::AccelSim => BackendKind::AccelSim,
            BackendSelection::Auto => {
                if parallel.worker_count(rows, cols) > 1
                    || (parallel == ParallelPolicy::Auto
                        && rows >= AUTO_PARALLEL_MIN_ROWS
                        && rows.saturating_mul(cols) >= Self::auto_parallel_elements(format))
                {
                    BackendKind::Parallel
                } else {
                    BackendKind::Fused
                }
            }
        }
    }
}

impl std::fmt::Display for BackendSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BackendSelection::Auto => "auto",
            BackendSelection::Scalar => "scalar",
            BackendSelection::Fused => "fused",
            BackendSelection::Parallel => "parallel",
            BackendSelection::AccelSim => "accel-sim",
        };
        f.write_str(name)
    }
}

/// Configuration of the HAAN normalization approximation.
///
/// Build one with [`HaanConfig::builder`] or use a per-model preset matching Section
/// V-A of the paper.
///
/// # Example
///
/// ```
/// use haan::HaanConfig;
/// use haan_numerics::Format;
///
/// let config = HaanConfig::builder()
///     .subsample(256)
///     .skip_range(50, 60)
///     .format(Format::Int8)
///     .build();
/// assert_eq!(config.n_sub, Some(256));
/// assert_eq!(config.skip_range, Some((50, 60)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HaanConfig {
    /// Human-readable label for reports.
    pub label: String,
    /// Subsample length `Nsub`; `None` disables subsampling (full input statistics).
    pub n_sub: Option<usize>,
    /// Fixed skip range `(i, j)`; `None` means either no skipping or a calibrated range.
    pub skip_range: Option<(usize, usize)>,
    /// Operand quantization format for the statistics datapath.
    pub format: Format,
    /// Number of Newton iterations in the fast inverse square root; `None` uses the
    /// exact square root (no bit-trick approximation).
    pub invsqrt_newton_iterations: Option<u32>,
    /// Row-parallelism policy of the batched normalization engine.
    pub parallel: ParallelPolicy,
    /// Execution-backend selection of the batched normalization engine.
    pub backend: BackendSelection,
    /// Whether the block-level fusion sites (fused residual+norm and
    /// norm+matmul-epilogue) dispatch to the backend's fused entry points. Disabled,
    /// the normalizer runs the composed sequence (separate add → norm → matmul) the
    /// fused paths are bit-identical to — useful for differential testing.
    pub fusion_enabled: bool,
}

impl HaanConfig {
    /// Starts building a configuration.
    #[must_use]
    pub fn builder() -> HaanConfigBuilder {
        HaanConfigBuilder::default()
    }

    /// A configuration with every optimization disabled — numerically equivalent to the
    /// reference normalizer; useful as a sanity baseline.
    #[must_use]
    pub fn unoptimized() -> Self {
        Self {
            label: "unoptimized".to_string(),
            n_sub: None,
            skip_range: None,
            format: Format::Fp32,
            invsqrt_newton_iterations: None,
            parallel: ParallelPolicy::Sequential,
            backend: BackendSelection::Auto,
            fusion_enabled: true,
        }
    }

    /// The LLaMA-7B preset of Section V-A: `Nsub = 256`, skip range (50, 60), INT8.
    #[must_use]
    pub fn llama_7b_paper() -> Self {
        Self {
            label: "HAAN (LLaMA-7B preset)".to_string(),
            n_sub: Some(256),
            skip_range: Some((50, 60)),
            format: Format::Int8,
            invsqrt_newton_iterations: Some(1),
            parallel: ParallelPolicy::Sequential,
            backend: BackendSelection::Auto,
            fusion_enabled: true,
        }
    }

    /// The OPT-2.7B preset of Section V-A: `Nsub = 1280`, skip range (55, 62), FP16.
    #[must_use]
    pub fn opt_2_7b_paper() -> Self {
        Self {
            label: "HAAN (OPT-2.7B preset)".to_string(),
            n_sub: Some(1280),
            skip_range: Some((55, 62)),
            format: Format::Fp16,
            invsqrt_newton_iterations: Some(1),
            parallel: ParallelPolicy::Sequential,
            backend: BackendSelection::Auto,
            fusion_enabled: true,
        }
    }

    /// The GPT2-1.5B preset of Section V-A: `Nsub = 800`, skip range (85, 92), FP16.
    #[must_use]
    pub fn gpt2_1_5b_paper() -> Self {
        Self {
            label: "HAAN (GPT2-1.5B preset)".to_string(),
            n_sub: Some(800),
            skip_range: Some((85, 92)),
            format: Format::Fp16,
            invsqrt_newton_iterations: Some(1),
            parallel: ParallelPolicy::Sequential,
            backend: BackendSelection::Auto,
            fusion_enabled: true,
        }
    }

    /// Scales a paper preset to a laptop-scale model: the skip range is kept (layer
    /// structure is preserved by `ModelConfig::scaled_down`) but `Nsub` is rescaled in
    /// proportion to the reduced embedding width.
    #[must_use]
    pub fn rescaled_subsample(mut self, paper_dim: usize, actual_dim: usize) -> Self {
        if let Some(n_sub) = self.n_sub {
            let scaled = (n_sub as f64 * actual_dim as f64 / paper_dim as f64).round() as usize;
            self.n_sub = Some(scaled.max(8).min(actual_dim));
        }
        self
    }

    /// Validates the configuration against a model's normalization-layer count.
    ///
    /// # Errors
    ///
    /// Returns [`HaanError::InvalidSkipRange`] or [`HaanError::InvalidConfig`] when a
    /// field is out of range.
    pub fn validate(&self, num_norm_layers: usize) -> Result<(), HaanError> {
        if let Some((start, end)) = self.skip_range {
            if start >= end || end >= num_norm_layers {
                return Err(HaanError::InvalidSkipRange {
                    range: (start, end),
                    num_layers: num_norm_layers,
                });
            }
        }
        if self.n_sub == Some(0) {
            return Err(HaanError::InvalidConfig(
                "subsample length must be at least 1".to_string(),
            ));
        }
        Ok(())
    }
}

impl Default for HaanConfig {
    fn default() -> Self {
        Self {
            label: "HAAN (default)".to_string(),
            n_sub: None,
            skip_range: None,
            format: Format::Fp16,
            invsqrt_newton_iterations: Some(1),
            parallel: ParallelPolicy::Sequential,
            backend: BackendSelection::Auto,
            fusion_enabled: true,
        }
    }
}

/// Builder for [`HaanConfig`].
#[derive(Debug, Clone, Default)]
pub struct HaanConfigBuilder {
    config: HaanConfig,
}

impl HaanConfigBuilder {
    /// Sets the report label.
    #[must_use]
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.config.label = label.into();
        self
    }

    /// Enables subsampling with the given `Nsub`.
    #[must_use]
    pub fn subsample(mut self, n_sub: usize) -> Self {
        self.config.n_sub = Some(n_sub);
        self
    }

    /// Sets a fixed skip range `(start, end)` (inclusive endpoints, `start` is the anchor).
    #[must_use]
    pub fn skip_range(mut self, start: usize, end: usize) -> Self {
        self.config.skip_range = Some((start, end));
        self
    }

    /// Sets the operand quantization format.
    #[must_use]
    pub fn format(mut self, format: Format) -> Self {
        self.config.format = format;
        self
    }

    /// Sets the number of Newton iterations of the fast inverse square root
    /// (`None` = exact square root).
    #[must_use]
    pub fn invsqrt_iterations(mut self, iterations: Option<u32>) -> Self {
        self.config.invsqrt_newton_iterations = iterations;
        self
    }

    /// Sets the row-parallelism policy of the batched normalization engine.
    #[must_use]
    pub fn parallel(mut self, policy: ParallelPolicy) -> Self {
        self.config.parallel = policy;
        self
    }

    /// Sets the execution backend of the batched normalization engine.
    #[must_use]
    pub fn backend(mut self, backend: BackendSelection) -> Self {
        self.config.backend = backend;
        self
    }

    /// Enables or disables the block-level fusion sites (fused residual+norm and
    /// norm+matmul-epilogue). On by default; disabling falls back to the composed
    /// sequence the fused paths are parity-tested against.
    #[must_use]
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.config.fusion_enabled = enabled;
        self
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> HaanConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        let llama = HaanConfig::llama_7b_paper();
        assert_eq!(llama.n_sub, Some(256));
        assert_eq!(llama.skip_range, Some((50, 60)));
        assert_eq!(llama.format, Format::Int8);

        let opt = HaanConfig::opt_2_7b_paper();
        assert_eq!(opt.n_sub, Some(1280));
        assert_eq!(opt.skip_range, Some((55, 62)));
        assert_eq!(opt.format, Format::Fp16);

        let gpt2 = HaanConfig::gpt2_1_5b_paper();
        assert_eq!(gpt2.n_sub, Some(800));
        assert_eq!(gpt2.skip_range, Some((85, 92)));
        assert_eq!(gpt2.format, Format::Fp16);
    }

    #[test]
    fn validation_against_layer_counts() {
        assert!(HaanConfig::llama_7b_paper().validate(65).is_ok());
        assert!(HaanConfig::llama_7b_paper().validate(40).is_err());
        assert!(HaanConfig::gpt2_1_5b_paper().validate(97).is_ok());
        let bad = HaanConfig {
            n_sub: Some(0),
            ..HaanConfig::default()
        };
        assert!(bad.validate(10).is_err());
        let reversed = HaanConfig::builder().skip_range(20, 10).build();
        assert!(reversed.validate(65).is_err());
        assert!(HaanConfig::unoptimized().validate(1).is_ok());
    }

    #[test]
    fn builder_sets_all_fields() {
        let config = HaanConfig::builder()
            .label("test")
            .subsample(128)
            .skip_range(3, 9)
            .format(Format::Int8)
            .invsqrt_iterations(Some(2))
            .build();
        assert_eq!(config.label, "test");
        assert_eq!(config.n_sub, Some(128));
        assert_eq!(config.skip_range, Some((3, 9)));
        assert_eq!(config.format, Format::Int8);
        assert_eq!(config.invsqrt_newton_iterations, Some(2));
    }

    #[test]
    fn rescaling_subsample_tracks_width_reduction() {
        let config = HaanConfig::llama_7b_paper().rescaled_subsample(4096, 64);
        // 256 / 4096 * 64 = 4, clamped up to the minimum of 8.
        assert_eq!(config.n_sub, Some(8));
        let config = HaanConfig::opt_2_7b_paper().rescaled_subsample(2560, 128);
        assert_eq!(config.n_sub, Some(64));
        // Without subsampling, rescaling is a no-op.
        assert_eq!(
            HaanConfig::unoptimized().rescaled_subsample(4096, 64).n_sub,
            None
        );
    }

    #[test]
    fn parallel_policy_worker_counts() {
        assert_eq!(ParallelPolicy::Sequential.worker_count(100, 4096), 1);
        assert_eq!(ParallelPolicy::Threads(4).worker_count(100, 4096), 4);
        // Degenerate thread counts fall back to sequential; requests are clamped to
        // the number of rows.
        assert_eq!(ParallelPolicy::Threads(0).worker_count(100, 4096), 1);
        assert_eq!(ParallelPolicy::Threads(8).worker_count(2, 16), 2);
        // Auto stays sequential for small batches.
        assert_eq!(ParallelPolicy::Auto.worker_count(2, 8), 1);
        assert!(ParallelPolicy::Auto.worker_count(64, 4096) >= 1);
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::Sequential);

        let config = HaanConfig::builder()
            .parallel(ParallelPolicy::Threads(2))
            .build();
        assert_eq!(config.parallel, ParallelPolicy::Threads(2));
        assert_eq!(HaanConfig::default().parallel, ParallelPolicy::Sequential);
    }

    #[test]
    fn auto_selection_picks_the_expected_backend_per_shape() {
        let auto = BackendSelection::Auto;
        // Small batches stay on the fused sequential kernel.
        assert_eq!(
            auto.resolve(4, 64, Format::Fp32, ParallelPolicy::Auto),
            BackendKind::Fused
        );
        // A decode step (one row) never fans out, no matter how wide.
        assert_eq!(
            auto.resolve(1, 1 << 20, Format::Fp32, ParallelPolicy::Auto),
            BackendKind::Fused
        );
        // A Sequential policy is a hard guarantee: Auto never parallelizes it,
        // no matter the batch size.
        assert_eq!(
            auto.resolve(64, 4096, Format::Fp32, ParallelPolicy::Sequential),
            BackendKind::Fused
        );
        // With an Auto policy, big batches cross the elements threshold and fan out.
        assert_eq!(
            auto.resolve(64, 4096, Format::Fp32, ParallelPolicy::Auto),
            BackendKind::Parallel
        );
        // Quantized statistics amortise threads at half the batch size: 16×2048
        // elements sit between the FP16 (32 Ki) and FP32 (64 Ki) thresholds, so the
        // format-aware escalation fans out where the format-blind policy would not.
        assert_eq!(
            auto.resolve(16, 2048, Format::Fp16, ParallelPolicy::Auto),
            BackendKind::Parallel
        );
        assert_eq!(
            auto.resolve(16, 2048, Format::Fp32, ParallelPolicy::Auto),
            BackendKind::Fused
        );
        // An explicit thread request wins regardless of shape.
        assert_eq!(
            auto.resolve(2, 8, Format::Fp32, ParallelPolicy::Threads(2)),
            BackendKind::Parallel
        );
        // Explicit selections are unconditional.
        assert_eq!(
            BackendSelection::Scalar.resolve(64, 4096, Format::Fp32, ParallelPolicy::Auto),
            BackendKind::Scalar
        );
        assert_eq!(
            BackendSelection::Fused.resolve(64, 4096, Format::Fp32, ParallelPolicy::Auto),
            BackendKind::Fused
        );
        assert_eq!(
            BackendSelection::Parallel.resolve(1, 1, Format::Fp32, ParallelPolicy::Sequential),
            BackendKind::Parallel
        );
        assert_eq!(
            BackendSelection::AccelSim.resolve(1, 1, Format::Fp32, ParallelPolicy::Sequential),
            BackendKind::AccelSim
        );
    }

    #[test]
    fn backend_selection_display_and_builder() {
        assert_eq!(BackendSelection::default(), BackendSelection::Auto);
        assert_eq!(BackendSelection::Auto.to_string(), "auto");
        assert_eq!(BackendSelection::Scalar.to_string(), "scalar");
        assert_eq!(BackendSelection::Fused.to_string(), "fused");
        assert_eq!(BackendSelection::Parallel.to_string(), "parallel");
        assert_eq!(BackendSelection::AccelSim.to_string(), "accel-sim");
        let config = HaanConfig::builder()
            .backend(BackendSelection::Fused)
            .build();
        assert_eq!(config.backend, BackendSelection::Fused);
        assert_eq!(HaanConfig::default().backend, BackendSelection::Auto);
    }

    #[test]
    fn partial_construction_via_struct_update_syntax() {
        // Ergonomics contract used by examples and the serving layer: every
        // engine-facing config must support `..Default::default()` construction.
        let config = HaanConfig {
            n_sub: Some(128),
            backend: BackendSelection::Fused,
            ..Default::default()
        };
        assert_eq!(config.n_sub, Some(128));
        assert_eq!(config.backend, BackendSelection::Fused);
        assert_eq!(config.parallel, ParallelPolicy::default());
        assert_eq!(config.format, HaanConfig::default().format);
        // The enums themselves carry defaults usable in that position.
        assert_eq!(ParallelPolicy::default(), ParallelPolicy::Sequential);
        assert_eq!(BackendSelection::default(), BackendSelection::Auto);
    }

    #[test]
    fn default_and_unoptimized() {
        assert_eq!(HaanConfig::default().format, Format::Fp16);
        let unopt = HaanConfig::unoptimized();
        assert!(unopt.n_sub.is_none());
        assert!(unopt.skip_range.is_none());
        assert!(unopt.invsqrt_newton_iterations.is_none());
    }
}
