//! Numeric formats supported by the HAAN accelerator interface.

use crate::fixed::QFormat;
use crate::fp16::Fp16;
use crate::quant::Int8Quantizer;
use std::fmt;

/// The external numeric formats the accelerator can be configured for
/// (Section IV of the paper: FP32, FP16 and INT8 inputs, fixed-point internals).
///
/// # Example
///
/// ```
/// use haan_numerics::Format;
/// assert_eq!(Format::Fp16.bits(), 16);
/// assert!(Format::Int8.is_integer());
/// let xs = [0.5f32, -1.25, 3.0];
/// let rounded = Format::Fp16.round_trip(&xs);
/// assert_eq!(rounded.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Format {
    /// IEEE 754 binary32. The "original" precision in the paper's accuracy tables.
    Fp32,
    /// IEEE 754 binary16.
    #[default]
    Fp16,
    /// Signed 8-bit integers with a per-tensor symmetric scale.
    Int8,
    /// An explicit fixed-point format (used for internal datapath experiments).
    Fixed(QFormat),
}

impl Format {
    /// Storage width in bits per element.
    #[must_use]
    pub fn bits(&self) -> u32 {
        match self {
            Format::Fp32 => 32,
            Format::Fp16 => 16,
            Format::Int8 => 8,
            Format::Fixed(q) => q.total_bits(),
        }
    }

    /// Storage width in bytes per element (rounded up).
    #[must_use]
    pub fn bytes(&self) -> u32 {
        self.bits().div_ceil(8)
    }

    /// True for integer / fixed-point formats (those bypass the FP2FX units in Fig. 4).
    #[must_use]
    pub fn is_integer(&self) -> bool {
        matches!(self, Format::Int8 | Format::Fixed(_))
    }

    /// True for floating-point formats.
    #[must_use]
    pub fn is_float(&self) -> bool {
        !self.is_integer()
    }

    /// Applies the quantization this format would impose on a tensor and converts the
    /// result back to `f32`, i.e. the numerical effect of storing `values` in this format.
    ///
    /// For [`Format::Int8`] a symmetric per-tensor scale is fitted to the data, which is
    /// how the paper applies INT8 quantization over the normalization input.
    #[must_use]
    pub fn round_trip(&self, values: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.round_trip_into(values, &mut out);
        out
    }

    /// Allocation-free variant of [`Format::round_trip`]: clears `out` and fills it
    /// with the rounded values, reusing its capacity. The batched normalization engine
    /// calls this once per row with one scratch buffer.
    pub fn round_trip_into(&self, values: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.reserve(values.len());
        match self {
            Format::Fp32 => out.extend_from_slice(values),
            Format::Fp16 => out.extend(values.iter().map(|&v| Fp16::from_f32(v).to_f32())),
            Format::Int8 => match Int8Quantizer::fit(values) {
                Ok(q) => out.extend(values.iter().map(|&v| q.dequantize(q.quantize(v)))),
                Err(_) => out.extend_from_slice(values),
            },
            Format::Fixed(q) => out.extend(
                values
                    .iter()
                    .map(|&v| crate::fixed::Fixed::from_f64(f64::from(v), *q).to_f32()),
            ),
        }
    }

    /// Relative energy cost of a multiply-accumulate in this format, normalised to FP32.
    ///
    /// These coefficients drive the accelerator power model; they follow the usual
    /// ASIC/FPGA energy scaling (FP16 ≈ 0.6×, INT8 ≈ 0.3× of FP32 MAC energy), which
    /// is consistent with the paper's observation that FP32 normalization consumes
    /// about 1.29× the power of FP16 and INT8 the least.
    #[must_use]
    pub fn relative_mac_energy(&self) -> f64 {
        match self {
            Format::Fp32 => 1.0,
            Format::Fp16 => 0.60,
            Format::Int8 => 0.30,
            Format::Fixed(q) => {
                // Scale with the square of the width relative to a 16-bit fixed MAC at 0.35.
                let w = f64::from(q.total_bits());
                0.35 * (w / 16.0).powi(2)
            }
        }
    }

    /// All formats evaluated in the paper's tables.
    #[must_use]
    pub fn paper_formats() -> [Format; 3] {
        [Format::Int8, Format::Fp16, Format::Fp32]
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Format::Fp32 => write!(f, "FP32"),
            Format::Fp16 => write!(f, "FP16"),
            Format::Int8 => write!(f, "INT8"),
            Format::Fixed(q) => write!(f, "FX({q})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Format::Fp32.bits(), 32);
        assert_eq!(Format::Fp16.bits(), 16);
        assert_eq!(Format::Int8.bits(), 8);
        assert_eq!(Format::Fixed(QFormat::new(10, 2)).bits(), 12);
        assert_eq!(Format::Fixed(QFormat::new(10, 2)).bytes(), 2);
    }

    #[test]
    fn classification() {
        assert!(Format::Int8.is_integer());
        assert!(Format::Fixed(QFormat::Q16_16).is_integer());
        assert!(Format::Fp16.is_float());
        assert!(Format::Fp32.is_float());
    }

    #[test]
    fn fp32_round_trip_is_identity() {
        let xs = [1.0f32, -2.5, 0.0, 1e-3];
        assert_eq!(Format::Fp32.round_trip(&xs), xs.to_vec());
    }

    #[test]
    fn fp16_round_trip_loses_precision_gracefully() {
        let xs = [std::f32::consts::PI];
        let rt = Format::Fp16.round_trip(&xs);
        assert!((rt[0] - std::f32::consts::PI).abs() < 1e-3);
        assert_ne!(rt[0], std::f32::consts::PI);
    }

    #[test]
    fn int8_round_trip_error_is_bounded_by_scale() {
        let xs: Vec<f32> = (-50..50).map(|i| i as f32 / 10.0).collect();
        let rt = Format::Int8.round_trip(&xs);
        let max_abs = 5.0f32;
        let scale = max_abs / 127.0;
        for (a, b) in xs.iter().zip(&rt) {
            assert!((a - b).abs() <= scale * 0.51 + 1e-6);
        }
    }

    #[test]
    fn energy_ordering_matches_paper() {
        assert!(Format::Int8.relative_mac_energy() < Format::Fp16.relative_mac_energy());
        assert!(Format::Fp16.relative_mac_energy() < Format::Fp32.relative_mac_energy());
    }

    #[test]
    fn display_names() {
        assert_eq!(Format::Fp32.to_string(), "FP32");
        assert_eq!(Format::Int8.to_string(), "INT8");
        assert_eq!(Format::Fixed(QFormat::Q16_16).to_string(), "FX(Q16.16)");
        assert_eq!(Format::default(), Format::Fp16);
    }

    #[test]
    fn paper_formats_cover_the_table() {
        let fs = Format::paper_formats();
        assert!(fs.contains(&Format::Int8));
        assert!(fs.contains(&Format::Fp16));
        assert!(fs.contains(&Format::Fp32));
    }
}
