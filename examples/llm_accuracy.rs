//! Accuracy study: evaluate a laptop-scale LLaMA-style model on the five synthetic task
//! suites with exact normalization, with a well-configured HAAN normalizer, and with a
//! deliberately bad skip range — reproducing the qualitative message of Tables I and II.
//!
//! Run with: `cargo run --release --example llm_accuracy`

use haan::evaluate::{degradation, AccuracyEvaluator};
use haan::{Calibrator, HaanConfig, SkipPlan};
use haan_llm::tasks::TaskSpec;
use haan_llm::{ModelConfig, TransformerModel};
use haan_numerics::Format;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ModelConfig::llama_7b().scaled_down(48, 96);
    let model = TransformerModel::new(&config, 42)?;
    println!(
        "model: {} ({} normalization layers, RMSNorm)",
        config.name,
        model.num_norm_layers()
    );

    // Small suites keep the example fast; the binaries in `haan-bench` use larger ones.
    let specs: Vec<TaskSpec> = TaskSpec::paper_suites(10, 5)
        .into_iter()
        .map(|mut s| {
            s.prompt_len = 8;
            s.choice_len = 3;
            s
        })
        .collect();
    let evaluator = AccuracyEvaluator::with_specs(&model, &specs)?;

    // Calibrate the decay on the model itself, then evaluate three configurations.
    let calibration = Calibrator::new(10, 12)
        .with_min_gap(6)
        .calibrate_model(&model, 7)?;
    let good_plan =
        SkipPlan::for_fixed_range(std::slice::from_ref(&calibration.mean_log_isd), 50, 60)?;
    let bad_plan = SkipPlan {
        start: 2,
        end: 30,
        decay: 0.5,
        correlation: 0.0,
        calibration_anchor_log_isd: 3.0,
    };

    let original = evaluator.evaluate_original(&model)?;
    let good = evaluator.evaluate_haan(
        &model,
        &HaanConfig::builder()
            .label("HAAN (deep skip range, INT8, subsampled)")
            .subsample(16)
            .format(Format::Int8)
            .build(),
        Some(good_plan),
    )?;
    let bad = evaluator.evaluate_haan(
        &model,
        &HaanConfig::builder()
            .label("HAAN (early skip range, broken)")
            .build(),
        Some(bad_plan),
    )?;

    for row in [&original, &good, &bad] {
        let scores: Vec<String> = row
            .scores
            .iter()
            .map(|s| format!("{} {:.3}", s.task, s.accuracy))
            .collect();
        println!("{:45} {}", row.label, scores.join("  "));
    }
    let drops = degradation(&original, &good);
    let max_drop = drops.iter().map(|(_, d)| d.abs()).fold(0.0f64, f64::max);
    println!("\nmax |degradation| of the well-configured HAAN: {max_drop:.3}");
    println!(
        "mean accuracy: original {:.3}, HAAN (good) {:.3}, HAAN (early skip range) {:.3}",
        original.mean_accuracy(),
        good.mean_accuracy(),
        bad.mean_accuracy()
    );
    Ok(())
}
