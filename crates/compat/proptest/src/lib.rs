//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so this crate reimplements the small
//! property-testing surface the workspace uses: the [`proptest!`] macro over `ident in
//! strategy` bindings, numeric-range and tuple strategies, [`collection::vec`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Sampling is fully
//! deterministic: each test derives its generator seed from its own name (override the
//! case count with the `PROPTEST_CASES` environment variable, default 64).
//!
//! Unlike real proptest there is no shrinking — a failing case panics with the values
//! embedded in the assertion message instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// How a single sampled case finished.
#[doc(hidden)]
pub enum CaseResult {
    /// The body ran to completion.
    Pass,
    /// A `prop_assume!` rejected the inputs; the case is not counted as a failure.
    Reject,
}

/// A source of sampled values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+ $(,)?) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        })+
    };
}

impl_range_strategy!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        })+
    };
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Per-type numeric strategies (subset of `proptest::num`).
pub mod num {
    /// Strategies over `u16`.
    pub mod u16 {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngCore;

        /// Strategy yielding any `u16` bit pattern.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Any `u16` value, uniformly.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = u16;
            fn sample(&self, rng: &mut StdRng) -> u16 {
                (rng.next_u64() >> 48) as u16
            }
        }
    }

    /// Strategies over `f64`.
    pub mod f64 {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngCore;

        /// Strategy yielding normal (finite, non-subnormal, non-zero-exponent-edge)
        /// `f64` values of either sign.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        /// Any normal `f64`, with a uniformly random sign, exponent and mantissa.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = f64;
            fn sample(&self, rng: &mut StdRng) -> f64 {
                let bits = rng.next_u64();
                let sign = bits & (1u64 << 63);
                // Biased exponent in [1, 2046]: excludes zero/subnormal and inf/NaN.
                let exponent = 1 + (bits >> 52) % 2046;
                let mantissa = bits & ((1u64 << 52) - 1);
                f64::from_bits(sign | (exponent << 52) | mantissa)
            }
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`] (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` test module needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Number of cases to run per property (reads `PROPTEST_CASES`, defaults to 64).
#[doc(hidden)]
#[must_use]
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test seed derived from the test name (FNV-1a).
#[doc(hidden)]
#[must_use]
pub fn seed_from_test_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Builds the deterministic generator for one property test (referenced by the
/// [`proptest!`] expansion so user crates don't need their own `rand` dependency).
#[doc(hidden)]
#[must_use]
pub fn new_test_rng(test_name: &str) -> StdRng {
    rand::SeedableRng::seed_from_u64(seed_from_test_name(test_name))
}

/// Declares property tests: each `ident in strategy` argument is sampled per case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::new_test_rng(stringify!($name));
                for _ in 0..$crate::case_count() {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let _outcome: $crate::CaseResult = (|| {
                        $body
                        #[allow(unreachable_code)]
                        $crate::CaseResult::Pass
                    })();
                }
            }
        )+
    };
}

/// `assert!` that reports the property-test case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// `assert_eq!` that reports the property-test case on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => return $crate::CaseResult::Reject,
        }
    };
}

#[cfg(test)]
mod tests {

    #[test]
    fn seeds_differ_per_name() {
        assert_ne!(
            crate::seed_from_test_name("alpha"),
            crate::seed_from_test_name("beta")
        );
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_respect_bounds(
            x in -3.0f32..3.0,
            n in 1usize..9,
            xs in crate::collection::vec(0.0f64..1.0, 2..17),
        ) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!(xs.len() >= 2 && xs.len() < 17);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn assume_rejects_without_failing(x in -1.0f64..1.0) {
            prop_assume!(x > 2.0);
            prop_assert!(false, "unreachable: assume must reject every case");
        }

        #[test]
        fn tuple_strategies_sample_componentwise(
            pairs in crate::collection::vec((-1.0f64..0.0, 0.0f64..1.0), 1..8),
        ) {
            for (a, b) in pairs {
                prop_assert!(a < 0.0 && b >= 0.0);
            }
        }
    }
}
