//! Cycle-level simulator of the HAAN hardware accelerator (Section IV of the paper).
//!
//! The accelerator has three pipelined stages (Fig. 3):
//!
//! 1. the **Input Statistics Calculator** ([`isc`], Fig. 4) — FP2FX conversion, parallel
//!    `Σz²/N` and `(Σz/N)²` datapaths built from multipliers and adder trees, producing
//!    the mean and variance in fixed point;
//! 2. the **Square Root Inverter** ([`sqrt_inv`], Fig. 5) — FX2FP conversion, the
//!    `0x5F3759DF` fast-inverse-square-root seed and one Newton refinement, plus the
//!    scalar **ISD predictor unit** ([`predictor_unit`]) used for skipped layers;
//! 3. the **Normalization Units** ([`norm_unit`], Fig. 6) — `(z − μ)·ISD·α + β` with
//!    configurable output format.
//!
//! [`memory`] implements the flattened chunked layout of Fig. 7, [`pipeline`] composes
//! the stages across token vectors (inter-sample pipelining), [`resources`] and
//! [`power`] model FPGA cost (Alveo U280 budget, Table III), and [`accelerator`] ties
//! everything into [`HaanAccelerator`], the functional + timing top level. [`backend`]
//! additionally exposes the datapath as an execution backend ([`AccelSimBackend`]) of
//! the core crate's batched normalization engine, so
//! `haan::BackendSelection::AccelSim` routes `normalize_matrix_into` calls through
//! the simulator.
//!
//! # Example
//!
//! ```
//! use haan_accel::{AccelConfig, HaanAccelerator};
//! use haan::HaanConfig;
//!
//! let mut accel = HaanAccelerator::new(AccelConfig::haan_v1(), HaanConfig::default());
//! let tokens: Vec<Vec<f32>> = (0..4).map(|t| (0..256).map(|i| ((i + t) % 7) as f32).collect()).collect();
//! let gamma = vec![1.0f32; 256];
//! let beta = vec![0.0f32; 256];
//! let run = accel.normalize_layer(&tokens, &gamma, &beta, haan_llm::NormKind::LayerNorm, 0)?;
//! assert_eq!(run.outputs.len(), 4);
//! assert!(run.report.total_cycles > 0);
//! # Ok::<(), haan_accel::AccelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accelerator;
pub mod adder_tree;
pub mod backend;
pub mod config;
pub mod error;
pub mod isc;
pub mod memory;
pub mod norm_unit;
pub mod pipeline;
pub mod power;
pub mod predictor_unit;
pub mod resources;
pub mod sqrt_inv;

pub use accelerator::{HaanAccelerator, LayerRun, WorkloadReport};
pub use backend::AccelSimBackend;
pub use config::AccelConfig;
pub use error::AccelError;
pub use pipeline::{PipelineReport, StageTiming};
pub use power::PowerEstimate;
pub use resources::ResourceEstimate;
