//! The log-linear ISD predictor of Eq. 3 and the `cal_decay` slope fit.

use crate::error::HaanError;

/// Fits the decay coefficient `e` of Algorithm 1's `calDecay`: the least-squares slope
/// of the given `log(ISD)` values against their layer offsets `0, 1, 2, …`.
///
/// # Errors
///
/// Returns [`HaanError::InvalidProfiles`] for fewer than two values.
///
/// # Example
///
/// ```
/// use haan::cal_decay;
/// let log_isds = [0.0, -0.1, -0.2, -0.3];
/// assert!((cal_decay(&log_isds)? + 0.1).abs() < 1e-9);
/// # Ok::<(), haan::HaanError>(())
/// ```
pub fn cal_decay(log_isds: &[f64]) -> Result<f64, HaanError> {
    if log_isds.len() < 2 {
        return Err(HaanError::InvalidProfiles(
            "cal_decay needs at least two layers".to_string(),
        ));
    }
    let n = log_isds.len() as f64;
    let mean_x = (n - 1.0) / 2.0;
    let mean_y = log_isds.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    for (i, &y) in log_isds.iter().enumerate() {
        let dx = i as f64 - mean_x;
        cov += dx * (y - mean_y);
        var_x += dx * dx;
    }
    Ok(cov / var_x)
}

/// The log-linear ISD predictor (Eq. 3):
/// `log(ISD_k) = log(ISD_i) + e · (k − i)` for `i ≤ k ≤ j`.
///
/// The anchor `log(ISD_i)` is observed at run time (the last layer before the skip
/// range still computes its ISD); the decay coefficient `e` is fitted offline by
/// [`cal_decay`] during calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsdPredictor {
    anchor_layer: usize,
    decay: f64,
}

impl IsdPredictor {
    /// Creates a predictor anchored at layer `anchor_layer` with decay coefficient `e`.
    #[must_use]
    pub fn new(anchor_layer: usize, decay: f64) -> Self {
        Self {
            anchor_layer,
            decay,
        }
    }

    /// The anchor layer index `i`.
    #[must_use]
    pub fn anchor_layer(&self) -> usize {
        self.anchor_layer
    }

    /// The decay coefficient `e`.
    #[must_use]
    pub fn decay(&self) -> f64 {
        self.decay
    }

    /// Predicts `log(ISD_k)` from the anchor observation `log(ISD_i)`.
    ///
    /// # Errors
    ///
    /// Returns [`HaanError::InvalidSkipRange`] when `layer` precedes the anchor.
    pub fn predict_log_isd(&self, anchor_log_isd: f64, layer: usize) -> Result<f64, HaanError> {
        if layer < self.anchor_layer {
            return Err(HaanError::InvalidSkipRange {
                range: (self.anchor_layer, layer),
                num_layers: layer + 1,
            });
        }
        Ok(anchor_log_isd + self.decay * (layer - self.anchor_layer) as f64)
    }

    /// Predicts the ISD itself (`exp` of [`IsdPredictor::predict_log_isd`]).
    ///
    /// # Errors
    ///
    /// Returns [`HaanError::InvalidSkipRange`] when `layer` precedes the anchor.
    pub fn predict_isd(&self, anchor_isd: f64, layer: usize) -> Result<f64, HaanError> {
        let log = self.predict_log_isd(anchor_isd.ln(), layer)?;
        Ok(log.exp())
    }

    /// Mean absolute prediction error (in log space) over an observed profile, a
    /// convenient calibration-quality metric.
    ///
    /// # Errors
    ///
    /// Returns [`HaanError::InvalidProfiles`] if the profile does not cover the anchor.
    pub fn log_error_over_profile(&self, profile: &[f64]) -> Result<f64, HaanError> {
        if self.anchor_layer >= profile.len() {
            return Err(HaanError::InvalidProfiles(format!(
                "profile of length {} does not contain anchor layer {}",
                profile.len(),
                self.anchor_layer
            )));
        }
        let anchor = profile[self.anchor_layer];
        let mut total = 0.0;
        let mut count = 0usize;
        for (layer, &observed) in profile.iter().enumerate().skip(self.anchor_layer) {
            let predicted = self.predict_log_isd(anchor, layer)?;
            total += (predicted - observed).abs();
            count += 1;
        }
        Ok(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cal_decay_recovers_exact_slopes() {
        let flat = [1.0, 1.0, 1.0, 1.0];
        assert!(cal_decay(&flat).unwrap().abs() < 1e-12);
        let down: Vec<f64> = (0..10).map(|i| 5.0 - 0.25 * i as f64).collect();
        assert!((cal_decay(&down).unwrap() + 0.25).abs() < 1e-12);
        let up: Vec<f64> = (0..10).map(|i| 0.1 * i as f64).collect();
        assert!((cal_decay(&up).unwrap() - 0.1).abs() < 1e-12);
        assert!(cal_decay(&[1.0]).is_err());
    }

    #[test]
    fn cal_decay_is_least_squares_under_noise() {
        // Noise that averages out should not move the slope much.
        let values: Vec<f64> = (0..50)
            .map(|i| -0.05 * i as f64 + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        assert!((cal_decay(&values).unwrap() + 0.05).abs() < 1e-3);
    }

    #[test]
    fn predictor_follows_eq3() {
        let predictor = IsdPredictor::new(50, -0.04);
        assert_eq!(predictor.anchor_layer(), 50);
        assert_eq!(predictor.decay(), -0.04);
        let anchor_log = -1.0;
        assert!((predictor.predict_log_isd(anchor_log, 50).unwrap() + 1.0).abs() < 1e-12);
        assert!((predictor.predict_log_isd(anchor_log, 60).unwrap() - (-1.0 - 0.4)).abs() < 1e-12);
        assert!(predictor.predict_log_isd(anchor_log, 49).is_err());
    }

    #[test]
    fn isd_prediction_exponentiates() {
        let predictor = IsdPredictor::new(0, -0.5);
        let isd = predictor.predict_isd(1.0, 2).unwrap();
        assert!((isd - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn profile_error_is_zero_for_exact_log_linear_profiles() {
        let predictor = IsdPredictor::new(3, -0.1);
        let profile: Vec<f64> = (0..10).map(|i| 2.0 - 0.1 * i as f64).collect();
        assert!(predictor.log_error_over_profile(&profile).unwrap() < 1e-12);
        // A wrong slope shows up as error.
        let bad = IsdPredictor::new(3, -0.3);
        assert!(bad.log_error_over_profile(&profile).unwrap() > 0.1);
        // Profiles that do not reach the anchor are rejected.
        assert!(predictor.log_error_over_profile(&[1.0, 2.0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_cal_decay_matches_generating_slope(
            slope in -0.5f64..0.5,
            intercept in -5.0f64..5.0,
            len in 3usize..64,
        ) {
            let values: Vec<f64> = (0..len).map(|i| intercept + slope * i as f64).collect();
            prop_assert!((cal_decay(&values).unwrap() - slope).abs() < 1e-9);
        }

        #[test]
        fn prop_prediction_is_monotone_for_negative_decay(
            decay in -0.5f64..-0.001,
            anchor in -3.0f64..3.0,
            offset in 1usize..40,
        ) {
            let p = IsdPredictor::new(10, decay);
            let at_anchor = p.predict_log_isd(anchor, 10).unwrap();
            let later = p.predict_log_isd(anchor, 10 + offset).unwrap();
            prop_assert!(later < at_anchor);
        }
    }
}
