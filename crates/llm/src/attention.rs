//! Multi-head causal self-attention, with a full-sequence path and two
//! incremental KV-cached paths.
//!
//! [`MultiHeadAttention::forward`] recomputes the whole `seq × seq` score matrix —
//! the reference oracle. [`MultiHeadAttention::forward_cached`] appends freshly
//! projected key/value rows to a dense [`AttentionKvCache`] and attends only the
//! new query rows against the cache, making decode O(seq) per token;
//! [`MultiHeadAttention::forward_paged`] is the same computation over a
//! pool-backed [`crate::paging::PagedKvCache`]. All three are
//! bit-identical on the positions they both compute: projections are row-local
//! matmuls, the offset causal softmax shares the zero-offset reduction order,
//! masked score columns contribute exact `+0.0` terms to the value reduction, and
//! the paged gather produces the very panels the dense window copy produces.

use crate::error::LlmError;
use crate::init::gaussian_matrix;
use crate::paging::{KvStore, PagedKvCache};
use crate::tensor::Matrix;
use rand::rngs::StdRng;

/// Per-layer key/value cache of one decode stream: the projected K and V rows of
/// every position processed so far, stored full-width (heads concatenated, exactly
/// as [`MultiHeadAttention::forward`] lays them out before head slicing).
///
/// Storage is preallocated at `capacity × E`, so appending rows during decode never
/// allocates. One cache belongs to one attention layer of one stream; a
/// [`DecodeContext`](crate::model::DecodeContext) owns one per block.
#[derive(Debug, Clone)]
pub struct AttentionKvCache {
    keys: Matrix,
    values: Matrix,
    len: usize,
}

/// Equality is *logical*: two caches are equal when they hold the same live K/V
/// rows (same width, same length). Capacity and stale storage beyond `len` —
/// e.g. rows retained by [`AttentionKvCache::clear`] — do not participate.
impl PartialEq for AttentionKvCache {
    fn eq(&self, other: &Self) -> bool {
        let live = self.len * self.keys.cols();
        self.len == other.len
            && self.keys.cols() == other.keys.cols()
            && self.keys.as_slice()[..live] == other.keys.as_slice()[..live]
            && self.values.as_slice()[..live] == other.values.as_slice()[..live]
    }
}

impl AttentionKvCache {
    /// Creates an empty cache with room for `capacity` positions of an
    /// `embedding_dim`-wide attention layer.
    #[must_use]
    pub fn new(capacity: usize, embedding_dim: usize) -> Self {
        Self {
            keys: Matrix::zeros(capacity, embedding_dim),
            values: Matrix::zeros(capacity, embedding_dim),
            len: 0,
        }
    }

    /// Number of positions cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no position has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions the cache can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.keys.rows()
    }

    /// Width of the cached rows.
    #[must_use]
    pub fn embedding_dim(&self) -> usize {
        self.keys.cols()
    }

    /// Forgets every cached position (the storage is retained), as at the start of
    /// a new sequence.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Forgets every position past `len` (no-op when the cache is already that
    /// short) — the rollback primitive a failed multi-block pass uses to restore
    /// a consistent stream state.
    pub(crate) fn truncate(&mut self, len: usize) {
        self.len = self.len.min(len);
    }

    /// Appends projected key/value rows for the next positions.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the rows do not fit the remaining
    /// capacity or have the wrong width.
    fn append(&mut self, keys: &Matrix, values: &Matrix) -> Result<(), LlmError> {
        self.keys.set_rows(self.len, keys)?;
        self.values.set_rows(self.len, values)?;
        self.len += keys.rows();
        Ok(())
    }
}

/// Reusable scratch for the cached attention paths: the per-head panels, score
/// matrix, and (for paged storage) the full-width gather panels that
/// [`MultiHeadAttention::forward_cached`]/[`MultiHeadAttention::forward_paged`]
/// would otherwise allocate on every step.
///
/// A [`DecodeContext`](crate::model::DecodeContext) owns one scratch and passes
/// it to every step, so the O(sequence-length) buffers of a long-lived decode
/// stream are allocated once and reused; [`AttnScratch::reserve`] pre-sizes
/// them to the stream's maximum so steady-state decode performs no growth at
/// all (pinned by [`AttnScratch::buffer_capacity`] telemetry in the decode
/// bench). The buffers carry no state between calls — every path overwrites
/// what it reads — so one scratch may serve any number of streams as long as
/// calls do not interleave.
#[derive(Debug, Default)]
pub struct AttnScratch {
    concat: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    scores: Matrix,
    head_out: Matrix,
    keys_all: Matrix,
    values_all: Matrix,
}

impl AttnScratch {
    /// An empty scratch; buffers grow on first use (or via
    /// [`AttnScratch::reserve`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows every buffer to the sizes an attention call with `new_rows` fresh
    /// query rows over `total_rows` cached positions needs, so later calls at
    /// or below those sizes allocate nothing.
    pub fn reserve(
        &mut self,
        new_rows: usize,
        total_rows: usize,
        embedding_dim: usize,
        num_heads: usize,
    ) {
        let head_dim = embedding_dim / num_heads.max(1);
        self.concat.resize(new_rows, embedding_dim);
        self.q.resize(new_rows, head_dim);
        self.k.resize(total_rows, head_dim);
        self.v.resize(total_rows, head_dim);
        self.scores.resize(new_rows, total_rows);
        self.head_out.resize(new_rows, head_dim);
        self.keys_all.resize(total_rows, embedding_dim);
        self.values_all.resize(total_rows, embedding_dim);
    }

    /// Total elements the scratch buffers can hold without reallocating. Flat
    /// across decode steps once the stream is warmed up — the decode bench
    /// asserts exactly that.
    #[must_use]
    pub fn buffer_capacity(&self) -> usize {
        self.concat.buffer_capacity()
            + self.q.buffer_capacity()
            + self.k.buffer_capacity()
            + self.v.buffer_capacity()
            + self.scores.buffer_capacity()
            + self.head_out.buffer_capacity()
            + self.keys_all.buffer_capacity()
            + self.values_all.buffer_capacity()
    }
}

/// A multi-head causal self-attention layer with full (not KV-cached) computation.
///
/// The projection weights are stored as `E × E` matrices; heads are processed by
/// slicing the projected queries/keys/values column-wise.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiHeadAttention {
    embedding_dim: usize,
    num_heads: usize,
    w_query: Matrix,
    w_key: Matrix,
    w_value: Matrix,
    w_output: Matrix,
}

impl MultiHeadAttention {
    /// Creates an attention layer with seeded Gaussian weights. `output_gain` scales
    /// the output projection, which is how the model shapes the depth profile of the
    /// residual-stream variance.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads` does not divide `embedding_dim`.
    #[must_use]
    pub fn new(rng: &mut StdRng, embedding_dim: usize, num_heads: usize, output_gain: f32) -> Self {
        assert!(
            embedding_dim.is_multiple_of(num_heads),
            "head count must divide the embedding dimension"
        );
        let std = (1.0 / embedding_dim as f32).sqrt();
        Self {
            embedding_dim,
            num_heads,
            w_query: gaussian_matrix(rng, embedding_dim, embedding_dim, std),
            w_key: gaussian_matrix(rng, embedding_dim, embedding_dim, std),
            w_value: gaussian_matrix(rng, embedding_dim, embedding_dim, std),
            w_output: gaussian_matrix(rng, embedding_dim, embedding_dim, std * output_gain),
        }
    }

    /// Embedding width.
    #[must_use]
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Number of heads.
    #[must_use]
    pub fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Width of one head.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.embedding_dim / self.num_heads
    }

    /// The Q/K/V projection weights, in that order — the matmul consumers a
    /// fused norm+matmul-epilogue site multiplies the normalized input by. The
    /// output projection is not included: it consumes attention output, not the
    /// normalized residual stream.
    #[must_use]
    pub fn qkv_weights(&self) -> [&Matrix; 3] {
        [&self.w_query, &self.w_key, &self.w_value]
    }

    /// [`MultiHeadAttention::forward`] from already-projected queries, keys and
    /// values (each `seq × E`, heads concatenated) — the back half the fused
    /// norm+matmul-epilogue path enters after producing the projections without
    /// materializing the normalized input. Bit-identical to
    /// [`MultiHeadAttention::forward`] given the same projections, because it is
    /// the same per-head loop over the same kernels.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the three matrices disagree in
    /// shape or their width differs from the configured embedding dimension.
    pub fn forward_projected(
        &self,
        queries: &Matrix,
        keys: &Matrix,
        values: &Matrix,
    ) -> Result<Matrix, LlmError> {
        if queries.cols() != self.embedding_dim
            || keys.shape() != queries.shape()
            || values.shape() != queries.shape()
        {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward_projected",
                lhs: queries.shape(),
                rhs: keys.shape(),
            });
        }
        let seq = queries.rows();
        let head_dim = self.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut concat = Matrix::zeros(seq, self.embedding_dim);
        let mut q = Matrix::zeros(seq, head_dim);
        let mut k = Matrix::zeros(seq, head_dim);
        let mut v = Matrix::zeros(seq, head_dim);
        let mut scores = Matrix::zeros(seq, seq);
        let mut head_out = Matrix::zeros(seq, head_dim);

        for head in 0..self.num_heads {
            let col_start = head * head_dim;
            queries.columns_into(col_start, head_dim, &mut q)?;
            keys.columns_into(col_start, head_dim, &mut k)?;
            values.columns_into(col_start, head_dim, &mut v)?;

            q.matmul_transposed_into(&k, &mut scores)?;
            scores.scale_in_place(scale);
            scores.causal_softmax_rows();
            scores.matmul_into(&v, &mut head_out)?;
            concat.set_columns(col_start, &head_out)?;
        }
        concat.matmul(&self.w_output)
    }

    /// Runs causal self-attention over a `seq × E` input and returns a `seq × E` output.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the input width differs from the
    /// configured embedding dimension.
    pub fn forward(&self, input: &Matrix) -> Result<Matrix, LlmError> {
        if input.cols() != self.embedding_dim {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward",
                lhs: input.shape(),
                rhs: (self.embedding_dim, self.embedding_dim),
            });
        }
        let seq = input.rows();
        let queries = input.matmul(&self.w_query)?;
        let keys = input.matmul(&self.w_key)?;
        let values = input.matmul(&self.w_value)?;

        let head_dim = self.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut concat = Matrix::zeros(seq, self.embedding_dim);

        // One set of scratch buffers reused across heads: the per-head loop performs
        // no allocation.
        let mut q = Matrix::zeros(seq, head_dim);
        let mut k = Matrix::zeros(seq, head_dim);
        let mut v = Matrix::zeros(seq, head_dim);
        let mut scores = Matrix::zeros(seq, seq);
        let mut head_out = Matrix::zeros(seq, head_dim);

        for head in 0..self.num_heads {
            let col_start = head * head_dim;
            queries.columns_into(col_start, head_dim, &mut q)?;
            keys.columns_into(col_start, head_dim, &mut k)?;
            values.columns_into(col_start, head_dim, &mut v)?;

            q.matmul_transposed_into(&k, &mut scores)?;
            scores.scale_in_place(scale);
            scores.causal_softmax_rows();
            scores.matmul_into(&v, &mut head_out)?;
            concat.set_columns(col_start, &head_out)?;
        }
        concat.matmul(&self.w_output)
    }

    /// Runs causal self-attention incrementally: projects the `new × E` input rows,
    /// appends their K/V rows to `cache`, and attends the new query rows against
    /// the whole cache (prefix plus the rows just appended). Returns the `new × E`
    /// output for the new positions only.
    ///
    /// Passing the entire sequence through one call (prefill) is bit-identical to
    /// [`MultiHeadAttention::forward`]; passing it in chunks (decode) is
    /// bit-identical to recomputing the full prefix and keeping the last rows,
    /// because every kernel involved reduces in the same order either way.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the input width differs from the
    /// configured embedding dimension, the cache was built for a different width,
    /// or the new rows exceed the cache capacity.
    pub fn forward_cached(
        &self,
        input: &Matrix,
        cache: &mut AttentionKvCache,
    ) -> Result<Matrix, LlmError> {
        self.forward_cached_with(input, cache, &mut AttnScratch::new())
    }

    /// [`MultiHeadAttention::forward_cached`] reusing caller-owned scratch
    /// buffers instead of allocating panels per call — the steady-state decode
    /// path (see [`AttnScratch`]).
    ///
    /// # Errors
    ///
    /// The contract of [`MultiHeadAttention::forward_cached`].
    pub fn forward_cached_with(
        &self,
        input: &Matrix,
        cache: &mut AttentionKvCache,
        scratch: &mut AttnScratch,
    ) -> Result<Matrix, LlmError> {
        if input.cols() != self.embedding_dim || cache.embedding_dim() != self.embedding_dim {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward_cached",
                lhs: input.shape(),
                rhs: (cache.capacity(), cache.embedding_dim()),
            });
        }
        let offset = cache.len();
        let total = offset + input.rows();
        if total > cache.capacity() {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward_cached (capacity)",
                lhs: (total, self.embedding_dim),
                rhs: (cache.capacity(), cache.embedding_dim()),
            });
        }
        let queries = self.project_and_append(input, |keys, values| cache.append(keys, values))?;
        self.attend_cached(&queries, offset, total, scratch, |col_start, k, v| {
            cache.keys.window_into(0, col_start, k)?;
            cache.values.window_into(0, col_start, v)
        })
    }

    /// [`MultiHeadAttention::forward_cached_with`] from already-projected new
    /// rows: appends `new_keys`/`new_values` to the cache and attends the
    /// projected `queries` against the whole cache. The fused
    /// norm+matmul-epilogue decode path enters here after projecting Q/K/V
    /// straight out of the normalization site; bit-identical to projecting via
    /// [`MultiHeadAttention::forward_cached_with`] given the same projections.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the three matrices disagree in
    /// shape, their width differs from the configured embedding dimension or the
    /// cache's width, or the new rows exceed the cache capacity.
    pub fn forward_cached_projected_with(
        &self,
        queries: &Matrix,
        new_keys: &Matrix,
        new_values: &Matrix,
        cache: &mut AttentionKvCache,
        scratch: &mut AttnScratch,
    ) -> Result<Matrix, LlmError> {
        if queries.cols() != self.embedding_dim
            || new_keys.shape() != queries.shape()
            || new_values.shape() != queries.shape()
            || cache.embedding_dim() != self.embedding_dim
        {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward_cached_projected",
                lhs: queries.shape(),
                rhs: (cache.capacity(), cache.embedding_dim()),
            });
        }
        let offset = cache.len();
        let total = offset + queries.rows();
        if total > cache.capacity() {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward_cached_projected (capacity)",
                lhs: (total, self.embedding_dim),
                rhs: (cache.capacity(), cache.embedding_dim()),
            });
        }
        cache.append(new_keys, new_values)?;
        self.attend_cached(queries, offset, total, scratch, |col_start, k, v| {
            cache.keys.window_into(0, col_start, k)?;
            cache.values.window_into(0, col_start, v)
        })
    }

    /// [`MultiHeadAttention::forward_cached`] over pool-backed paged storage:
    /// projects the new rows, appends their K/V rows to `cache` (borrowing pool
    /// pages as needed), and attends the new queries against the whole cache.
    /// Bit-identical to the dense path — the paged gather fills the same per-head
    /// scratch panels the dense window copy fills, in the same row order, and
    /// every kernel downstream is shared.
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] when the input width differs from the
    /// configured embedding dimension or the cache was pooled at a different
    /// width, and [`LlmError::KvPoolExhausted`] when the pool cannot supply the
    /// pages the appended rows need (the cache is left unchanged).
    pub fn forward_paged(
        &self,
        input: &Matrix,
        cache: &mut PagedKvCache,
    ) -> Result<Matrix, LlmError> {
        self.forward_paged_with(input, cache, &mut AttnScratch::new())
    }

    /// [`MultiHeadAttention::forward_paged`] reusing caller-owned scratch
    /// buffers — gather panels included — instead of allocating per call.
    ///
    /// # Errors
    ///
    /// The contract of [`MultiHeadAttention::forward_paged`].
    pub fn forward_paged_with(
        &self,
        input: &Matrix,
        cache: &mut PagedKvCache,
        scratch: &mut AttnScratch,
    ) -> Result<Matrix, LlmError> {
        if input.cols() != self.embedding_dim || cache.embedding_dim() != self.embedding_dim {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward_paged",
                lhs: input.shape(),
                rhs: (cache.len(), cache.embedding_dim()),
            });
        }
        let offset = cache.len();
        let total = offset + input.rows();
        let queries = self.project_and_append(input, |keys, values| cache.append(keys, values))?;
        // One pool-lock acquisition gathers every live row at full width; the
        // per-head loop then slices panels from the local copy exactly as the
        // dense path slices its cache matrices — lock-free and byte-identical.
        // Split borrows: the gather panels are read by the closure while the
        // remaining scratch fields are written by the head loop.
        let AttnScratch {
            concat,
            q,
            k,
            v,
            scores,
            head_out,
            keys_all,
            values_all,
        } = scratch;
        keys_all.resize(total, self.embedding_dim);
        values_all.resize(total, self.embedding_dim);
        cache.gather_window(0, keys_all, values_all);
        self.attend_into(
            &queries,
            offset,
            total,
            |col_start, k, v| {
                keys_all.window_into(0, col_start, k)?;
                values_all.window_into(0, col_start, v)
            },
            concat,
            q,
            k,
            v,
            scores,
            head_out,
        )
    }

    /// [`MultiHeadAttention::forward_paged_with`] from already-projected new
    /// rows — the paged-storage twin of
    /// [`MultiHeadAttention::forward_cached_projected_with`].
    ///
    /// # Errors
    ///
    /// Returns [`LlmError::ShapeMismatch`] on shape or width disagreement and
    /// [`LlmError::KvPoolExhausted`] when the pool cannot supply the pages the
    /// appended rows need (the cache is left unchanged).
    pub fn forward_paged_projected_with(
        &self,
        queries: &Matrix,
        new_keys: &Matrix,
        new_values: &Matrix,
        cache: &mut PagedKvCache,
        scratch: &mut AttnScratch,
    ) -> Result<Matrix, LlmError> {
        if queries.cols() != self.embedding_dim
            || new_keys.shape() != queries.shape()
            || new_values.shape() != queries.shape()
            || cache.embedding_dim() != self.embedding_dim
        {
            return Err(LlmError::ShapeMismatch {
                op: "attention forward_paged_projected",
                lhs: queries.shape(),
                rhs: (cache.len(), cache.embedding_dim()),
            });
        }
        let offset = cache.len();
        let total = offset + queries.rows();
        cache.append(new_keys, new_values)?;
        let AttnScratch {
            concat,
            q,
            k,
            v,
            scores,
            head_out,
            keys_all,
            values_all,
        } = scratch;
        keys_all.resize(total, self.embedding_dim);
        values_all.resize(total, self.embedding_dim);
        cache.gather_window(0, keys_all, values_all);
        self.attend_into(
            queries,
            offset,
            total,
            |col_start, k, v| {
                keys_all.window_into(0, col_start, k)?;
                values_all.window_into(0, col_start, v)
            },
            concat,
            q,
            k,
            v,
            scores,
            head_out,
        )
    }

    /// [`MultiHeadAttention::forward_cached_projected_with`] /
    /// [`MultiHeadAttention::forward_paged_projected_with`] dispatched on a
    /// [`KvStore`].
    ///
    /// # Errors
    ///
    /// The contract of whichever storage path runs.
    pub fn forward_kv_projected_with(
        &self,
        queries: &Matrix,
        new_keys: &Matrix,
        new_values: &Matrix,
        kv: &mut KvStore,
        scratch: &mut AttnScratch,
    ) -> Result<Matrix, LlmError> {
        match kv {
            KvStore::Dense(cache) => {
                self.forward_cached_projected_with(queries, new_keys, new_values, cache, scratch)
            }
            KvStore::Paged(cache) => {
                self.forward_paged_projected_with(queries, new_keys, new_values, cache, scratch)
            }
        }
    }

    /// [`MultiHeadAttention::forward_cached`] /
    /// [`MultiHeadAttention::forward_paged`] dispatched on a [`KvStore`].
    ///
    /// # Errors
    ///
    /// The contract of whichever storage path runs.
    pub fn forward_kv(&self, input: &Matrix, kv: &mut KvStore) -> Result<Matrix, LlmError> {
        self.forward_kv_with(input, kv, &mut AttnScratch::new())
    }

    /// [`MultiHeadAttention::forward_kv`] reusing caller-owned scratch buffers.
    ///
    /// # Errors
    ///
    /// The contract of whichever storage path runs.
    pub fn forward_kv_with(
        &self,
        input: &Matrix,
        kv: &mut KvStore,
        scratch: &mut AttnScratch,
    ) -> Result<Matrix, LlmError> {
        match kv {
            KvStore::Dense(cache) => self.forward_cached_with(input, cache, scratch),
            KvStore::Paged(cache) => self.forward_paged_with(input, cache, scratch),
        }
    }

    /// The shared front half of the cached paths: projects the new rows and hands
    /// the fresh K/V rows to the storage-specific `append`, returning the
    /// projected queries.
    fn project_and_append(
        &self,
        input: &Matrix,
        append: impl FnOnce(&Matrix, &Matrix) -> Result<(), LlmError>,
    ) -> Result<Matrix, LlmError> {
        let queries = input.matmul(&self.w_query)?;
        let new_keys = input.matmul(&self.w_key)?;
        let new_values = input.matmul(&self.w_value)?;
        append(&new_keys, &new_values)?;
        Ok(queries)
    }

    /// The shared back half of the cached paths, resizing the caller's scratch
    /// to this call's shapes (an allocation only when the stream outgrew every
    /// earlier call) before running the head loop.
    fn attend_cached(
        &self,
        queries: &Matrix,
        offset: usize,
        total: usize,
        scratch: &mut AttnScratch,
        gather: impl FnMut(usize, &mut Matrix, &mut Matrix) -> Result<(), LlmError>,
    ) -> Result<Matrix, LlmError> {
        let AttnScratch {
            concat,
            q,
            k,
            v,
            scores,
            head_out,
            ..
        } = scratch;
        self.attend_into(
            queries, offset, total, gather, concat, q, k, v, scores, head_out,
        )
    }

    /// The per-head score/softmax/value loop over `total` cached positions,
    /// with the storage-specific `gather` filling the per-head K/V scratch
    /// panels (rows in position order). Every numeric kernel lives here, which
    /// is what makes dense and paged storage bit-identical by construction.
    #[allow(clippy::too_many_arguments)] // the split-borrowed scratch fields
    fn attend_into(
        &self,
        queries: &Matrix,
        offset: usize,
        total: usize,
        mut gather: impl FnMut(usize, &mut Matrix, &mut Matrix) -> Result<(), LlmError>,
        concat: &mut Matrix,
        q: &mut Matrix,
        k: &mut Matrix,
        v: &mut Matrix,
        scores: &mut Matrix,
        head_out: &mut Matrix,
    ) -> Result<Matrix, LlmError> {
        let new = queries.rows();
        let head_dim = self.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        // Reshape (allocation-free at steady state); every element written
        // below, so stale contents never leak: `concat` is covered column-block
        // by column-block across the head loop, the rest per head.
        concat.resize(new, self.embedding_dim);
        q.resize(new, head_dim);
        k.resize(total, head_dim);
        v.resize(total, head_dim);
        scores.resize(new, total);
        head_out.resize(new, head_dim);

        for head in 0..self.num_heads {
            let col_start = head * head_dim;
            queries.columns_into(col_start, head_dim, q)?;
            gather(col_start, k, v)?;

            q.matmul_transposed_into(k, scores)?;
            scores.scale_in_place(scale);
            scores.causal_softmax_rows_offset(offset);
            scores.matmul_into(v, head_out)?;
            concat.set_columns(col_start, head_out)?;
        }
        concat.matmul(&self.w_output)
    }

    /// Number of multiply-accumulate operations for a sequence of the given length,
    /// used by the analytic runtime model.
    #[must_use]
    pub fn mac_count(&self, seq_len: usize) -> u64 {
        let e = self.embedding_dim as u64;
        let s = seq_len as u64;
        // Four projections plus the two score/value matmuls.
        4 * s * e * e + 2 * s * s * e
    }

    /// Multiply-accumulate operations of one KV-cached decode step: processing the
    /// single token at position `seq_len - 1` with `seq_len - 1` positions already
    /// cached. Affine in `seq_len` (four one-row projections plus two
    /// length-`seq_len` score/value reductions per head), where the full-recompute
    /// path pays [`MultiHeadAttention::mac_count`]`(seq_len)` — quadratic — for the
    /// same token.
    #[must_use]
    pub fn mac_count_decode_step(&self, seq_len: usize) -> u64 {
        let e = self.embedding_dim as u64;
        let s = seq_len as u64;
        4 * e * e + 2 * s * e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haan_numerics::stats::VectorStats;
    use rand::SeedableRng;

    fn attention(dim: usize, heads: usize) -> MultiHeadAttention {
        let mut rng = StdRng::seed_from_u64(42);
        MultiHeadAttention::new(&mut rng, dim, heads, 1.0)
    }

    #[test]
    fn output_shape_matches_input() {
        let attn = attention(32, 4);
        let input = Matrix::zeros(5, 32);
        let out = attn.forward(&input).unwrap();
        assert_eq!(out.shape(), (5, 32));
        assert_eq!(attn.head_dim(), 8);
        assert_eq!(attn.num_heads(), 4);
        assert_eq!(attn.embedding_dim(), 32);
    }

    #[test]
    fn wrong_width_is_rejected() {
        let attn = attention(32, 4);
        assert!(attn.forward(&Matrix::zeros(5, 16)).is_err());
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadAttention::new(&mut rng, 30, 4, 1.0);
    }

    #[test]
    fn causality_first_token_ignores_the_rest() {
        // Changing later tokens must not change the first row of the output.
        let attn = attention(16, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let a = crate::init::gaussian_matrix(&mut rng, 4, 16, 1.0);
        let mut b = a.clone();
        for col in 0..16 {
            b.set(3, col, b.get(3, col) + 5.0);
        }
        let out_a = attn.forward(&a).unwrap();
        let out_b = attn.forward(&b).unwrap();
        for col in 0..16 {
            assert!((out_a.get(0, col) - out_b.get(0, col)).abs() < 1e-6);
        }
        // The last row, by contrast, must change.
        let last_diff: f32 = (0..16)
            .map(|c| (out_a.get(3, c) - out_b.get(3, c)).abs())
            .sum();
        assert!(last_diff > 1e-3);
    }

    #[test]
    fn output_gain_scales_output_magnitude() {
        let mut rng_small = StdRng::seed_from_u64(9);
        let mut rng_large = StdRng::seed_from_u64(9);
        let small = MultiHeadAttention::new(&mut rng_small, 16, 2, 0.5);
        let large = MultiHeadAttention::new(&mut rng_large, 16, 2, 2.0);
        let mut rng = StdRng::seed_from_u64(10);
        let input = crate::init::gaussian_matrix(&mut rng, 8, 16, 1.0);
        let out_small = small.forward(&input).unwrap();
        let out_large = large.forward(&input).unwrap();
        let var_small = VectorStats::compute(out_small.as_slice()).variance;
        let var_large = VectorStats::compute(out_large.as_slice()).variance;
        assert!(var_large > var_small * 4.0);
    }

    #[test]
    fn mac_count_grows_with_sequence_length() {
        let attn = attention(32, 4);
        assert!(attn.mac_count(64) > attn.mac_count(32));
        assert_eq!(attn.mac_count(1), 4 * 32 * 32 + 2 * 32);
    }

    #[test]
    fn cached_prefill_is_bit_identical_to_the_full_path() {
        let attn = attention(32, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let input = crate::init::gaussian_matrix(&mut rng, 6, 32, 1.0);
        let full = attn.forward(&input).unwrap();
        let mut cache = AttentionKvCache::new(8, 32);
        let cached = attn.forward_cached(&input, &mut cache).unwrap();
        assert_eq!(full, cached);
        assert_eq!(cache.len(), 6);
        assert!(!cache.is_empty());
        assert_eq!(cache.capacity(), 8);
        assert_eq!(cache.embedding_dim(), 32);
    }

    #[test]
    fn incremental_decode_matches_full_recompute_bit_for_bit() {
        // Feed the sequence token by token; every step's output row must equal the
        // last row of a full forward pass over the prefix so far.
        let attn = attention(16, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let input = crate::init::gaussian_matrix(&mut rng, 5, 16, 1.0);
        let mut cache = AttentionKvCache::new(5, 16);
        for step in 0..5 {
            let mut row = Matrix::zeros(1, 16);
            row.row_mut(0).copy_from_slice(input.row(step));
            let out = attn.forward_cached(&row, &mut cache).unwrap();
            let mut prefix = Matrix::zeros(step + 1, 16);
            for p in 0..=step {
                prefix.row_mut(p).copy_from_slice(input.row(p));
            }
            let oracle = attn.forward(&prefix).unwrap();
            assert_eq!(out.row(0), oracle.row(step), "step {step}");
        }
        assert_eq!(cache.len(), 5);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_path_rejects_bad_shapes_and_overflow() {
        let attn = attention(16, 2);
        let mut cache = AttentionKvCache::new(2, 16);
        assert!(attn
            .forward_cached(&Matrix::zeros(1, 8), &mut cache)
            .is_err());
        let mut narrow = AttentionKvCache::new(4, 8);
        assert!(attn
            .forward_cached(&Matrix::zeros(1, 16), &mut narrow)
            .is_err());
        assert!(attn
            .forward_cached(&Matrix::zeros(3, 16), &mut cache)
            .is_err());
        attn.forward_cached(&Matrix::zeros(2, 16), &mut cache)
            .unwrap();
        assert!(attn
            .forward_cached(&Matrix::zeros(1, 16), &mut cache)
            .is_err());
    }

    #[test]
    fn cache_equality_ignores_stale_storage_and_capacity() {
        let attn = attention(16, 2);
        let mut rng = StdRng::seed_from_u64(8);
        let old = crate::init::gaussian_matrix(&mut rng, 4, 16, 1.0);
        let fresh = crate::init::gaussian_matrix(&mut rng, 2, 16, 1.0);
        // `reused` keeps stale rows from a previous stream after clear(); `clean`
        // never saw them. Logically the two caches are the same stream state.
        let mut reused = AttentionKvCache::new(6, 16);
        attn.forward_cached(&old, &mut reused).unwrap();
        reused.clear();
        attn.forward_cached(&fresh, &mut reused).unwrap();
        let mut clean = AttentionKvCache::new(4, 16);
        attn.forward_cached(&fresh, &mut clean).unwrap();
        assert_eq!(reused, clean);
        // Different live content still compares unequal.
        let mut other = AttentionKvCache::new(4, 16);
        attn.forward_cached(&old, &mut other).unwrap();
        assert_ne!(clean, other);
    }

    #[test]
    fn paged_path_is_bit_identical_to_the_dense_cache() {
        use crate::paging::{KvBlockPool, KvStore, PagedKvCache};
        let attn = attention(16, 2);
        let mut rng = StdRng::seed_from_u64(5);
        let input = crate::init::gaussian_matrix(&mut rng, 6, 16, 1.0);
        let pool = KvBlockPool::shared(16, 2, 16);
        let mut dense = KvStore::Dense(AttentionKvCache::new(6, 16));
        let mut paged = KvStore::Paged(PagedKvCache::new(pool));
        // Prefill three rows at once, then decode one row at a time; every chunk
        // must agree bit for bit between the two storages.
        let mut prefix = Matrix::zeros(3, 16);
        for row in 0..3 {
            prefix.row_mut(row).copy_from_slice(input.row(row));
        }
        let out_dense = attn.forward_kv(&prefix, &mut dense).unwrap();
        let out_paged = attn.forward_kv(&prefix, &mut paged).unwrap();
        assert_eq!(out_dense, out_paged, "prefill");
        for step in 3..6 {
            let mut row = Matrix::zeros(1, 16);
            row.row_mut(0).copy_from_slice(input.row(step));
            let out_dense = attn.forward_kv(&row, &mut dense).unwrap();
            let out_paged = attn.forward_kv(&row, &mut paged).unwrap();
            assert_eq!(out_dense, out_paged, "step {step}");
        }
        assert_eq!(dense.len(), paged.len());
    }

    #[test]
    fn paged_path_surfaces_pool_exhaustion_without_corrupting_the_cache() {
        use crate::paging::{KvBlockPool, PagedKvCache};
        let attn = attention(16, 2);
        let pool = KvBlockPool::shared(4, 2, 16);
        let mut cache = PagedKvCache::new(pool);
        attn.forward_paged(&Matrix::zeros(4, 16), &mut cache)
            .unwrap();
        let err = attn
            .forward_paged(&Matrix::zeros(1, 16), &mut cache)
            .unwrap_err();
        assert!(matches!(err, LlmError::KvPoolExhausted { .. }));
        assert_eq!(cache.len(), 4, "failed step must leave the cache intact");
        // Width mismatches are still shape errors, not pool errors.
        assert!(matches!(
            attn.forward_paged(&Matrix::zeros(1, 8), &mut cache),
            Err(LlmError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn decode_step_macs_are_affine_in_sequence_length() {
        let attn = attention(32, 4);
        // Second difference of an affine function is zero: O(seq) per token.
        let d1 = attn.mac_count_decode_step(64) - attn.mac_count_decode_step(32);
        let d2 = attn.mac_count_decode_step(96) - attn.mac_count_decode_step(64);
        assert_eq!(d1, d2);
        // The full-recompute cost of the same token is quadratic and much larger.
        assert!(attn.mac_count(256) > 16 * attn.mac_count_decode_step(256));
        assert_eq!(attn.mac_count_decode_step(1), 4 * 32 * 32 + 2 * 32);
    }
}
