//! Workspace root of the HAAN reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level examples
//! (`examples/`) and integration tests (`tests/`) can exercise the whole stack through
//! one dependency. Library users should depend on the individual crates directly:
//!
//! * [`haan`] — the HAAN algorithm (ISD skipping, subsampling, quantization).
//! * [`haan_llm`] — the transformer simulation substrate.
//! * [`haan_numerics`] — fixed-point / FP16 / fast-inverse-sqrt numerics.
//! * [`haan_accel`] — the cycle-level accelerator simulator.
//! * [`haan_baselines`] — DFX / SOLE / MHAA / GPU baselines and the end-to-end model.
//! * [`haan_serve`] — the async serving layer (request-batching scheduler with
//!   per-session skip-anchor state).
//! * [`haan_router`] — the routing tier: a multi-group session router with
//!   prefix-aware placement, automatic prefix detection, and rebalancing over
//!   the park/resume seam.
//! * [`haan_obs`] — the unified observability layer (metrics registry, flight
//!   recorder, span-profiling sink) the serving stack reports through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use haan;
pub use haan_accel;
pub use haan_baselines;
pub use haan_llm;
pub use haan_numerics;
pub use haan_obs;
pub use haan_router;
pub use haan_serve;

/// Diagnostics shared by the repository-level examples and the tests that pin
/// their behavior, so the pinned metric is the *same computation* the example
/// prints (copy-pasting it would let the two drift apart silently).
pub mod diagnostics {
    /// Accuracy delta between exact and HAAN logits at one position.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct NextTokenDelta {
        /// Arg-max of the exact logits.
        pub exact_choice: usize,
        /// Arg-max of the approximated (HAAN) logits.
        pub approx_choice: usize,
        /// Rank of the exact model's choice in the approximated ordering
        /// (1 = full agreement).
        pub rank_of_exact_choice: usize,
        /// Mean `|Δlogit|` across the vocabulary.
        pub mean_abs_delta: f64,
        /// Standard deviation of the exact logits (the spread the delta is judged
        /// against: near-tied top logits make arg-max flips expected noise).
        pub exact_spread: f64,
    }

    /// Computes the next-token accuracy delta of `approx` logits against `exact`
    /// logits (same position, same vocabulary).
    ///
    /// # Panics
    ///
    /// Panics when the rows are empty, of different lengths, or non-finite.
    #[must_use]
    pub fn next_token_delta(exact: &[f32], approx: &[f32]) -> NextTokenDelta {
        assert_eq!(exact.len(), approx.len(), "logit rows must align");
        let argmax = |row: &[f32]| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .map(|(i, _)| i)
                .expect("non-empty row")
        };
        let exact_choice = argmax(exact);
        let approx_choice = argmax(approx);
        let exact_choice_logit = approx[exact_choice];
        let rank_of_exact_choice = 1 + approx
            .iter()
            .filter(|&&logit| logit > exact_choice_logit)
            .count();
        let mean_abs_delta = exact
            .iter()
            .zip(approx)
            .map(|(a, b)| f64::from((a - b).abs()))
            .sum::<f64>()
            / exact.len() as f64;
        let mean_exact = exact.iter().map(|&v| f64::from(v)).sum::<f64>() / exact.len() as f64;
        let exact_spread = (exact
            .iter()
            .map(|&v| (f64::from(v) - mean_exact).powi(2))
            .sum::<f64>()
            / exact.len() as f64)
            .sqrt();
        NextTokenDelta {
            exact_choice,
            approx_choice,
            rank_of_exact_choice,
            mean_abs_delta,
            exact_spread,
        }
    }
}

/// The arXiv identifier of the reproduced paper.
pub const PAPER_ARXIV_ID: &str = "2502.11832";

/// The paper title.
pub const PAPER_TITLE: &str =
    "HAAN: A Holistic Approach for Accelerating Normalization Operations in Large Language Models";

#[cfg(test)]
mod tests {
    use super::diagnostics::next_token_delta;

    #[test]
    fn metadata_is_present() {
        assert!(super::PAPER_TITLE.contains("HAAN"));
        assert_eq!(super::PAPER_ARXIV_ID, "2502.11832");
    }

    #[test]
    fn next_token_delta_ranks_and_measures() {
        // Exact picks index 2; approx flips indices 2 and 3, leaving the exact
        // choice ranked second with a uniform delta of 0 except at those slots.
        let exact = [0.0f32, 1.0, 4.0, 3.0];
        let approx = [0.0f32, 1.0, 3.0, 4.0];
        let delta = next_token_delta(&exact, &approx);
        assert_eq!(delta.exact_choice, 2);
        assert_eq!(delta.approx_choice, 3);
        assert_eq!(delta.rank_of_exact_choice, 2);
        assert!((delta.mean_abs_delta - 0.5).abs() < 1e-9);
        assert!(delta.exact_spread > 1.0);
        // Identical rows agree at rank 1 with zero delta.
        let same = next_token_delta(&exact, &exact);
        assert_eq!(same.rank_of_exact_choice, 1);
        assert_eq!(same.mean_abs_delta, 0.0);
    }
}
