//! Batched multi-stream decode: many KV-cached streams advanced in lockstep
//! through one engine session, with admission control and preempt/resume.
//!
//! A single [`DecodeStream`](crate::DecodeStream) submits one **single-row**
//! normalization request per site per token; the scheduler only widens the batch
//! when other client threads happen to be in flight at the same instant. A
//! [`DecodeGroup`] removes the luck: each [`DecodeGroup::step_all`] tick gathers
//! every ready stream and advances them through
//! [`TransformerModel::advance_many`] — one incremental pass over the stacked
//! rows, so the engine worker executes **one fused `normalize_matrix_into`
//! call per normalization site carrying every stream's rows**. Attention stays
//! per-stream (each row attends against its own paged K/V cache); every
//! row-local stage (both norm sites per block, the MLPs, the final norm, the
//! logit projection) runs batched.
//!
//! # Continuous batching
//!
//! The group is continuously fed, not a fixed batch (see `docs/SERVING.md`,
//! "Continuous batching"):
//!
//! * **Per-tick join/leave** — [`DecodeGroup::add_stream`] offers new prompts
//!   mid-flight; retired, cancelled, and shed slots free capacity that queued
//!   streams backfill on the next tick. [`GroupStats`] counts the churn
//!   (`joins`/`leaves`) and the per-tick row occupancy (`occupied_rows`).
//! * **Chunked prefill** — with [`DecodeGroup::set_prefill_chunk_rows`], a
//!   joining stream's prompt is fed at most `prefill_chunk_rows` rows per tick
//!   *inside the same batched pass* as the decode rows, so a long prompt never
//!   stalls other streams behind a monolithic prefill.
//! * **Prefix sharing** — [`DecodeGroup::add_stream_with_prefix`] attaches a
//!   stream to an interned [`KvPrefix`]: the common prompt's whole K/V pages
//!   are refcounted and mapped by every sharer instead of recomputed and
//!   duplicated per stream.
//!
//! # Overload behavior
//!
//! Streams share a bounded [`KvBlockPool`], so a group can be *offered* more
//! work than the pool holds. Three mechanisms make that safe (see
//! `docs/SERVING.md`, "Overload behavior"):
//!
//! * **Admission** — every prompt is offered to the engine's
//!   [`AdmissionController`] at construction. Streams past the watermark are
//!   *queued* (they hold zero pages until pages free up); streams past the
//!   queue bound are *shed* ([`StreamStatus::Shed`] — their slots never
//!   decode, and the count is visible in [`GroupStats`]).
//! * **Preemption** — when a lockstep tick hits pool exhaustion, the group
//!   parks a victim (fewest tokens decoded, ties to the least recently
//!   advanced): its pages are freed but its token history is kept, and the
//!   tick retries with the survivors.
//! * **Resume** — each tick first re-prefills queued streams (parked victims
//!   and never-started admissions alike) as soon as their pages fit, in one
//!   catch-up pass over `resident ++ unfed` tokens.
//!
//! Parity: generated tokens are bit-identical to each stream decoding alone on
//! a private normalizer — **including streams that were preempted and
//! resumed**, because a resume replays exactly the K/V rows the stream held at
//! park time (`tests/serving_chaos.rs` drills this under injected faults).
//! Row kernels are row-local, and HAAN's skip-anchor state is per-row within a
//! pass, so row `s` of a lockstep tick records and consumes exactly the
//! anchors stream `s` would see solo (`tests/kv_decode.rs`).

use crate::admission::{AdmissionController, AdmissionDecision};
use crate::engine::ns_since;
use crate::error::ServeError;
use crate::session::Session;
use haan_llm::{DecodeContext, EvictionPolicy, KvBlockPool, KvPrefix, LlmError, TransformerModel};
use haan_obs::EventKind;
use std::sync::Arc;
use std::time::Instant;

/// Lifecycle state of one [`DecodeGroup`] member stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStatus {
    /// Waiting for pool pages: admitted-but-not-started, or parked by a
    /// preemption. Holds zero pages; resumes automatically.
    Queued,
    /// Resident: holds pages and advances in lockstep ticks.
    Active,
    /// Reached the model's maximum sequence length; pages released.
    Finished,
    /// Refused by admission control; this slot never decodes.
    Shed,
    /// Cancelled by [`DecodeGroup::cancel`]; pages released, history kept.
    Cancelled,
    /// Extracted by [`DecodeGroup::extract_stream`] and adopted by another
    /// group; this slot is a tombstone and never decodes again. The stream's
    /// live state (tokens, status, correlation ID) continues at its new
    /// group's slot.
    Migrated,
}

/// Monotone per-group robustness counters, snapshotted by
/// [`DecodeGroup::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Prompts offered to admission control at construction.
    pub offered: u64,
    /// Streams that started decoding (immediately or after queueing).
    pub admitted: u64,
    /// Offers that had to wait at construction time.
    pub queued: u64,
    /// Offers refused; their slots never decode.
    pub shed: u64,
    /// Streams parked under pool pressure (mid-tick or via
    /// [`DecodeGroup::preempt`]).
    pub preemptions: u64,
    /// Parked streams successfully re-prefilled.
    pub resumes: u64,
    /// Rows re-prefilled by those resumes — the recompute cost of preemption.
    pub resume_reprefill_rows: u64,
    /// Streams that reached the model's maximum sequence length.
    pub completed: u64,
    /// [`DecodeGroup::step_all`] ticks executed (failed ticks included).
    pub ticks: u64,
    /// Transitions *into* the active set: activations of queued streams
    /// (first starts and preemption resumes alike), whether at construction
    /// or joined mid-flight via [`DecodeGroup::add_stream`].
    pub joins: u64,
    /// Transitions *out of* the active set: parks (pressure or
    /// [`DecodeGroup::preempt`]), completions, and cancellations of active
    /// streams.
    pub leaves: u64,
    /// Total K/V rows fed through the batched lockstep passes — decode rows
    /// plus, under chunked prefill, the prompt-chunk rows that ride the same
    /// fused site requests. Unchunked catch-up prefills run as separate
    /// per-stream passes and are *not* counted, so this divided by
    /// [`GroupStats::ticks`] is exactly the batching width chunking buys.
    pub occupied_rows: u64,
}

impl GroupStats {
    /// Mean rows per tick in the batched lockstep pass (0 before any tick).
    #[must_use]
    pub fn mean_tick_occupancy_rows(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.occupied_rows as f64 / self.ticks as f64
        }
    }
}

/// The portable state of a stream in flight between groups: everything
/// [`DecodeGroup::extract_stream`] captured, everything
/// [`DecodeGroup::adopt_stream`] needs to continue it bit-identically. Only
/// obtainable from `extract_stream` — the fields never leave this crate, so a
/// carrier is always internally consistent.
#[derive(Debug)]
pub struct MigratedStream {
    tokens: Vec<u32>,
    fed: usize,
    prompt_len: usize,
    parked_resident: Option<Vec<u32>>,
    catchup: Vec<u32>,
    eviction: EvictionPolicy,
    activated: bool,
    corr: u64,
}

impl MigratedStream {
    /// The stream's full token buffer (prompt followed by generated tokens).
    #[must_use]
    pub fn tokens(&self) -> &[u32] {
        &self.tokens
    }

    /// The engine-wide correlation ID the stream keeps across the move.
    #[must_use]
    pub fn correlation_id(&self) -> u64 {
        self.corr
    }
}

/// One member stream of a [`DecodeGroup`]: its decode context (paged K/V), its
/// token buffer, and its overload-lifecycle state.
#[derive(Debug)]
struct GroupStream<'m> {
    context: DecodeContext<'m>,
    /// Prompt followed by generated tokens; the unfed suffix is `tokens[fed..]`
    /// (the whole prompt before the stream first activates, exactly one token
    /// afterwards).
    tokens: Vec<u32>,
    fed: usize,
    prompt_len: usize,
    status: StreamStatus,
    /// The K/V-resident tokens captured when the stream was parked; a resume
    /// re-prefills exactly these plus the unfed suffix. `None` for streams
    /// that have never been parked (their catch-up feed is just `tokens[fed..]`).
    parked_resident: Option<Vec<u32>>,
    /// Chunked-prefill backlog: catch-up tokens an activation moved out of
    /// `tokens[fed..]` (and any trimmed resident window) that the lockstep
    /// passes drain up to `prefill_chunk_rows` per tick. Always empty in
    /// unchunked mode, where activation prefills the whole feed at once. The
    /// stream emits a token only on the pass that drains the backlog — its
    /// logits row is the last prompt position, exactly as one-shot prefill.
    catchup: Vec<u32>,
    /// Tick at which the stream last advanced — the preemption tie-breaker
    /// (least recently advanced loses).
    last_advanced_tick: u64,
    /// Whether this stream's activation has been reported to admission.
    activated: bool,
    /// Engine-wide correlation ID: every flight-recorder event of this
    /// stream's lifecycle carries it (see [`DecodeGroup::correlation_id`]).
    corr: u64,
}

impl GroupStream<'_> {
    /// True when the stream contributes a row to this tick's lockstep pass:
    /// active with room to grow, or active under a sliding window (which
    /// evicts instead of stopping).
    fn is_lockstep_ready(&self) -> bool {
        matches!(self.status, StreamStatus::Active)
            && (self.context.remaining_capacity() > 0 || self.is_windowed())
    }

    fn is_windowed(&self) -> bool {
        matches!(
            self.context.eviction(),
            EvictionPolicy::SlidingWindow { .. }
        )
    }

    /// Parks the stream: captures its K/V-resident tokens, frees its pages,
    /// and re-queues it. The unfed token (if any) stays in `tokens` — and a
    /// mid-prefill chunked stream keeps its `catchup` backlog — so the resume
    /// feed reconstructs the exact solo state.
    fn park(&mut self) {
        debug_assert!(matches!(self.status, StreamStatus::Active));
        self.parked_resident = Some(self.context.resident_tokens().to_vec());
        self.context.reset();
        self.status = StreamStatus::Queued;
    }
}

/// A set of KV-cached greedy decode streams advanced in lockstep through one
/// [`ServeEngine`](crate::ServeEngine) session.
///
/// Created by [`ServeEngine::decode_group`](crate::ServeEngine::decode_group).
/// Each [`DecodeGroup::step_all`] tick retires streams at capacity, resumes
/// queued streams whose pages now fit (prompts have different lengths, so
/// these catch-up prefills run per stream), then feeds one token per active
/// stream in a single batched pass. Streams that reach the model's maximum
/// sequence length stop contributing rows — their slots report `None` — and
/// streams queued, shed, or cancelled report `None` until (unless) they
/// activate. See the [module docs](self) for the overload lifecycle.
///
/// # Panics
///
/// Like every [`Session`]-driven forward pass, a tick panics with a descriptive
/// message if the engine shuts down mid-pass.
#[derive(Debug)]
pub struct DecodeGroup<'m> {
    model: &'m TransformerModel,
    session: Session,
    streams: Vec<GroupStream<'m>>,
    pool: Arc<KvBlockPool>,
    admission: Arc<AdmissionController>,
    stats: GroupStats,
    /// Upper bound on prompt rows fed per stream per tick (0 = unbounded:
    /// activation prefills the whole catch-up feed in one per-stream pass,
    /// the pre-chunking behavior). See [`DecodeGroup::set_prefill_chunk_rows`].
    prefill_chunk_rows: usize,
}

impl<'m> DecodeGroup<'m> {
    /// Builds a group of `prompts.len()` streams whose K/V pages come from
    /// `pool`, whose normalization runs through `session`, and whose admission
    /// is decided by `admission`: each prompt is offered in order, with
    /// already-accepted prompts' page estimates counting against the
    /// watermark, so an oversubscribed construction queues (and eventually
    /// sheds) the tail instead of letting every stream race the pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `prompts` is empty or any
    /// prompt fails the model's token validation, or when the pool width does
    /// not match the model. Overload is **not** an error: shed slots come back
    /// as [`StreamStatus::Shed`] and simply never decode.
    pub(crate) fn new(
        session: Session,
        pool: &Arc<KvBlockPool>,
        model: &'m TransformerModel,
        prompts: &[&[u32]],
        admission: Arc<AdmissionController>,
    ) -> Result<Self, ServeError> {
        let invalid = |err: LlmError| ServeError::InvalidRequest(err.to_string());
        let blocks = model.config().num_blocks;
        let shared = Arc::clone(session.shared());
        let mut stats = GroupStats::default();
        let mut streams = Vec::with_capacity(prompts.len());
        // Pages spoken for by prompts accepted earlier in this construction
        // (they are not resident yet, so the pool cannot see them).
        let mut projected_pages = 0usize;
        let mut queued_here = 0usize;
        for prompt in prompts {
            model.validate_tokens(prompt).map_err(invalid)?;
            let est = admission.page_estimate(pool, blocks, prompt.len());
            let corr = shared.next_corr();
            shared.emit(
                Some(corr),
                EventKind::Offer {
                    est_pages: est as u64,
                },
            );
            stats.offered += 1;
            let status = match admission.offer(pool, est, projected_pages, queued_here) {
                AdmissionDecision::Admit => {
                    projected_pages += est;
                    shared.emit(Some(corr), EventKind::Admit);
                    StreamStatus::Queued
                }
                AdmissionDecision::Queue => {
                    projected_pages += est;
                    queued_here += 1;
                    stats.queued += 1;
                    shared.emit(Some(corr), EventKind::Queue);
                    StreamStatus::Queued
                }
                AdmissionDecision::Shed { retry_after_us } => {
                    stats.shed += 1;
                    shared.emit(Some(corr), EventKind::Shed { retry_after_us });
                    StreamStatus::Shed
                }
            };
            streams.push(GroupStream {
                context: model.start_decode_in(pool).map_err(invalid)?,
                tokens: prompt.to_vec(),
                fed: 0,
                prompt_len: prompt.len(),
                status,
                parked_resident: None,
                catchup: Vec::new(),
                last_advanced_tick: 0,
                activated: false,
                corr,
            });
        }
        Ok(Self {
            model,
            session,
            streams,
            pool: Arc::clone(pool),
            admission,
            stats,
            prefill_chunk_rows: 0,
        })
    }

    /// Bounds every stream's prompt feed at `rows` per tick (0 — the default —
    /// restores one-shot activation prefills). With chunking on, a joining
    /// stream's long prompt is prefilled across `⌈len/rows⌉` ticks **inside
    /// the batched lockstep pass** — its chunk rows stack with the decode rows
    /// in the same fused `normalize_matrix_into` call per site — so admitting
    /// a 256-token prompt never stalls the other streams' next token behind a
    /// monolithic prefill. Tokens are unchanged: chunked prefill is the cached
    /// incrementality invariant, and a stream emits only when its backlog
    /// drains, from the same last-prompt-position logits row.
    pub fn set_prefill_chunk_rows(&mut self, rows: usize) {
        self.prefill_chunk_rows = rows;
    }

    /// The configured per-tick prompt-chunk bound (0 = unbounded).
    #[must_use]
    pub fn prefill_chunk_rows(&self) -> usize {
        self.prefill_chunk_rows
    }

    /// The model the group decodes with.
    #[must_use]
    pub fn model(&self) -> &'m TransformerModel {
        self.model
    }

    /// The group's engine session (e.g. to inspect its skip-anchor state).
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Number of member streams (shed slots included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when the group has no streams — only for groups born empty via
    /// [`ServeEngine::empty_decode_group`](crate::ServeEngine::empty_decode_group)
    /// that have not been fed yet ([`ServeEngine::decode_group`](crate::ServeEngine::decode_group)
    /// rejects empty prompt sets).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Number of streams that can still make progress: lockstep-ready actives
    /// plus queued streams waiting to (re)start.
    #[must_use]
    pub fn ready_streams(&self) -> usize {
        self.streams
            .iter()
            .filter(|s| matches!(s.status, StreamStatus::Queued) || s.is_lockstep_ready())
            .count()
    }

    /// Stream `index`'s lifecycle state.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn status(&self, index: usize) -> StreamStatus {
        self.streams[index].status
    }

    /// The group's robustness counters (admission split, preemptions, resumes
    /// and their re-prefill cost, completions, ticks).
    #[must_use]
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Stream `index`'s engine-wide correlation ID: the key its lifecycle
    /// events carry in the flight recorder
    /// ([`FlightRecorder::stream_events`](haan_obs::FlightRecorder::stream_events)).
    /// IDs are allocated in stream-creation order per engine, so same-seed
    /// drills assign them deterministically.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn correlation_id(&self, index: usize) -> u64 {
        self.streams[index].corr
    }

    /// Stream `index`'s full token buffer: prompt followed by generated tokens.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn tokens(&self, index: usize) -> &[u32] {
        &self.streams[index].tokens
    }

    /// Stream `index`'s generated tokens (excluding the prompt).
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn generated(&self, index: usize) -> &[u32] {
        let stream = &self.streams[index];
        &stream.tokens[stream.prompt_len..]
    }

    /// Stream `index`'s remaining capacity before the model's maximum sequence
    /// length: the live context's room for active streams, the room the
    /// stream *would* have for queued ones, zero for finished, shed, or
    /// cancelled slots.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn remaining_capacity(&self, index: usize) -> usize {
        let stream = &self.streams[index];
        match stream.status {
            StreamStatus::Active => stream.context.remaining_capacity(),
            StreamStatus::Queued => {
                // The rows the stream will hold right after its (re)prefill.
                let resident = stream
                    .parked_resident
                    .as_ref()
                    .map_or(stream.tokens.len(), Vec::len);
                self.model.config().max_seq_len.saturating_sub(resident)
            }
            StreamStatus::Finished
            | StreamStatus::Shed
            | StreamStatus::Cancelled
            | StreamStatus::Migrated => 0,
        }
    }

    /// Sets stream `index`'s K/V eviction policy (e.g. a sliding window so the
    /// stream can outlive `max_seq_len`). Must be called before the stream
    /// first activates — mid-stream policy changes would break the park/resume
    /// parity contract.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the stream has already fed
    /// tokens.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn set_eviction(
        &mut self,
        index: usize,
        eviction: EvictionPolicy,
    ) -> Result<(), ServeError> {
        let stream = &mut self.streams[index];
        if stream.fed > 0 {
            return Err(ServeError::InvalidRequest(
                "eviction policy must be set before the stream's first tick".to_string(),
            ));
        }
        stream.context.set_eviction(eviction);
        Ok(())
    }

    /// Offers one more prompt to the group **mid-flight**: the new stream is
    /// admitted, queued, or shed against live pool pressure exactly like a
    /// construction-time prompt, and an admitted stream activates on the next
    /// [`DecodeGroup::step_all`] tick — backfilling capacity freed by retired,
    /// cancelled, or shed slots without restarting the group. Returns the new
    /// stream's index.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the prompt fails the
    /// model's token validation. Overload is not an error: a refused prompt
    /// comes back as a [`StreamStatus::Shed`] slot.
    pub fn add_stream(&mut self, prompt: &[u32]) -> Result<usize, ServeError> {
        let invalid = |err: LlmError| ServeError::InvalidRequest(err.to_string());
        self.model.validate_tokens(prompt).map_err(invalid)?;
        let est =
            self.admission
                .page_estimate(&self.pool, self.model.config().num_blocks, prompt.len());
        let context = self.model.start_decode_in(&self.pool).map_err(invalid)?;
        self.push_offered(context, prompt.to_vec(), 0, est)
    }

    /// [`DecodeGroup::add_stream`] for a prompt that starts with an interned
    /// shared prefix: the new stream *attaches* to the prefix's
    /// already-materialized whole pages (refcounted, never copied — see
    /// [`KvPrefix`]) and only prefills `suffix`, so N streams with a common
    /// system prompt pay its K/V pages once. Admission charges only the
    /// non-shared pages ([`page_estimate_shared`](crate::AdmissionController::page_estimate_shared)).
    /// Tokens are bit-identical to a stream that prefilled
    /// `prefix.tokens() ++ suffix` from scratch: the shared pages hold exactly
    /// the rows that prefill would recompute.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when `suffix` is empty or fails
    /// token validation, when the prefix belongs to another pool or model, or
    /// when the combined prompt exceeds the model's maximum sequence length.
    pub fn add_stream_with_prefix(
        &mut self,
        prefix: &KvPrefix,
        suffix: &[u32],
    ) -> Result<usize, ServeError> {
        let invalid = |err: LlmError| ServeError::InvalidRequest(err.to_string());
        if suffix.is_empty() {
            return Err(ServeError::InvalidRequest(
                "a prefix stream needs at least one suffix token".to_string(),
            ));
        }
        if !Arc::ptr_eq(prefix.pool(), &self.pool) {
            return Err(ServeError::InvalidRequest(
                "prefix pages live in a different K/V pool than this group".to_string(),
            ));
        }
        let mut tokens = prefix.tokens().to_vec();
        tokens.extend_from_slice(suffix);
        self.model.validate_tokens(&tokens).map_err(invalid)?;
        let est = self.admission.page_estimate_shared(
            &self.pool,
            self.model.config().num_blocks,
            tokens.len(),
            prefix.rows(),
        );
        // The context maps the shared pages from birth (holding one reference
        // each), so even a queued stream's eventual prefill is suffix-only.
        let context = self
            .model
            .start_decode_with_prefix(prefix)
            .map_err(invalid)?;
        self.push_offered(context, tokens, prefix.rows(), est)
    }

    /// Shared tail of [`DecodeGroup::add_stream`] /
    /// [`DecodeGroup::add_stream_with_prefix`]: runs the admission offer
    /// (counting live queued slots) and pushes the slot. A shed prefix stream
    /// resets its context so refused slots pin no shared pages.
    fn push_offered(
        &mut self,
        context: DecodeContext<'m>,
        tokens: Vec<u32>,
        fed: usize,
        est: usize,
    ) -> Result<usize, ServeError> {
        let queued_now = self
            .streams
            .iter()
            .filter(|s| matches!(s.status, StreamStatus::Queued))
            .count();
        let shared = Arc::clone(self.session.shared());
        let corr = shared.next_corr();
        shared.emit(
            Some(corr),
            EventKind::Offer {
                est_pages: est as u64,
            },
        );
        self.stats.offered += 1;
        let status = match self.admission.offer(&self.pool, est, 0, queued_now) {
            AdmissionDecision::Admit => {
                shared.emit(Some(corr), EventKind::Admit);
                StreamStatus::Queued
            }
            AdmissionDecision::Queue => {
                self.stats.queued += 1;
                shared.emit(Some(corr), EventKind::Queue);
                StreamStatus::Queued
            }
            AdmissionDecision::Shed { retry_after_us } => {
                self.stats.shed += 1;
                shared.emit(Some(corr), EventKind::Shed { retry_after_us });
                StreamStatus::Shed
            }
        };
        if fed > 0 && !matches!(status, StreamStatus::Shed) {
            shared.emit(
                Some(corr),
                EventKind::PrefixAttach {
                    shared_rows: fed as u64,
                },
            );
        }
        let prompt_len = tokens.len();
        let mut stream = GroupStream {
            context,
            tokens,
            fed,
            prompt_len,
            status,
            parked_resident: None,
            catchup: Vec::new(),
            last_advanced_tick: 0,
            activated: false,
            corr,
        };
        if matches!(status, StreamStatus::Shed) {
            stream.context.reset();
            stream.fed = 0;
        }
        self.streams.push(stream);
        Ok(self.streams.len() - 1)
    }

    /// Forcibly parks an active stream: frees its pool pages while keeping its
    /// token history, exactly as a pressure-triggered preemption would. The
    /// stream re-queues and resumes automatically. Returns `false` (and does
    /// nothing) for streams that are not active or are about to finish.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn preempt(&mut self, index: usize) -> bool {
        if !self.streams[index].is_lockstep_ready() {
            return false;
        }
        self.streams[index].park();
        self.session
            .shared()
            .emit(Some(self.streams[index].corr), EventKind::Preempt);
        self.stats.preemptions += 1;
        self.stats.leaves += 1;
        true
    }

    /// Cancels a queued or active stream: frees its pages, keeps its token
    /// history, and marks it [`StreamStatus::Cancelled`] — it never decodes
    /// again. Returns `false` for streams already finished, shed, or
    /// cancelled.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn cancel(&mut self, index: usize) -> bool {
        let stream = &mut self.streams[index];
        match stream.status {
            StreamStatus::Queued | StreamStatus::Active => {
                if matches!(stream.status, StreamStatus::Active) {
                    self.stats.leaves += 1;
                }
                stream.context.reset();
                stream.parked_resident = None;
                stream.catchup.clear();
                stream.status = StreamStatus::Cancelled;
                let corr = stream.corr;
                self.session.shared().emit(Some(corr), EventKind::Cancel);
                true
            }
            StreamStatus::Finished
            | StreamStatus::Shed
            | StreamStatus::Cancelled
            | StreamStatus::Migrated => false,
        }
    }

    /// Extracts a queued or active stream for adoption by another group,
    /// riding the bit-identical park/resume seam: an active stream is parked
    /// first (its K/V-resident tokens captured, its pages returned to this
    /// group's pool), then the slot becomes a [`StreamStatus::Migrated`]
    /// tombstone and the stream's full state — token history, catch-up
    /// backlog, eviction policy, correlation ID — moves into the returned
    /// carrier. [`DecodeGroup::adopt_stream`] on any group of the same model
    /// continues it with zero token divergence: the destination's transparent
    /// resume re-prefills exactly the rows a preemption resume would have.
    ///
    /// A never-activated stream whose context was attached to an interned
    /// prefix drops the attachment (those shared pages live in *this* group's
    /// pool) and re-prefills its whole prompt at the destination.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] for streams that are finished,
    /// shed, cancelled, or already migrated — there is nothing live to move.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn extract_stream(&mut self, index: usize) -> Result<MigratedStream, ServeError> {
        match self.streams[index].status {
            StreamStatus::Active => {
                self.streams[index].park();
                self.stats.leaves += 1;
            }
            StreamStatus::Queued => {}
            StreamStatus::Finished
            | StreamStatus::Shed
            | StreamStatus::Cancelled
            | StreamStatus::Migrated => {
                return Err(ServeError::InvalidRequest(
                    "only queued or active streams can migrate".to_string(),
                ));
            }
        }
        let stream = &mut self.streams[index];
        let eviction = stream.context.eviction();
        stream.context.reset();
        let parked_resident = stream.parked_resident.take();
        // A never-parked stream carries no K/V state; any rows it had fed
        // (a prefix attachment) are gone with the old pool, so the whole
        // prompt re-prefills at the destination.
        let fed = if parked_resident.is_some() {
            stream.fed
        } else {
            0
        };
        let tokens = std::mem::take(&mut stream.tokens);
        let prompt_len = stream.prompt_len;
        let catchup = std::mem::take(&mut stream.catchup);
        // The tombstone keeps only the correlation ID; `prompt_len` drops to
        // zero so `generated()` stays in bounds of the now-empty buffer.
        stream.status = StreamStatus::Migrated;
        stream.prompt_len = 0;
        stream.fed = 0;
        Ok(MigratedStream {
            tokens,
            fed,
            prompt_len,
            parked_resident,
            catchup,
            eviction,
            activated: stream.activated,
            corr: stream.corr,
        })
    }

    /// Adopts a stream extracted from another group of the same model: a
    /// fresh context is opened in **this** group's pool, the carried state is
    /// re-queued, and the next [`DecodeGroup::step_all`] tick resumes it
    /// transparently (a previously-parked migrant counts toward this group's
    /// resume / re-prefill stats — that re-prefill *is* the migration cost).
    /// No admission offer runs: migration is a router decision, not a new
    /// request, and a stream admitted once stays admitted. Returns the new
    /// slot index.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] when the context cannot open in
    /// this group's pool (e.g. mismatched embedding width).
    pub fn adopt_stream(&mut self, migrated: MigratedStream) -> Result<usize, ServeError> {
        let invalid = |err: LlmError| ServeError::InvalidRequest(err.to_string());
        let mut context = self.model.start_decode_in(&self.pool).map_err(invalid)?;
        context.set_eviction(migrated.eviction);
        self.streams.push(GroupStream {
            context,
            tokens: migrated.tokens,
            fed: migrated.fed,
            prompt_len: migrated.prompt_len,
            status: StreamStatus::Queued,
            parked_resident: migrated.parked_resident,
            catchup: migrated.catchup,
            last_advanced_tick: 0,
            activated: migrated.activated,
            corr: migrated.corr,
        });
        Ok(self.streams.len() - 1)
    }

    /// The pool pages a queued stream's transparent resume would need in this
    /// group (`None` for non-queued slots) — the router's rebalance gate:
    /// migrating a victim only helps when the destination can actually seat
    /// it.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    #[must_use]
    pub fn resume_pages_needed(&self, index: usize) -> Option<usize> {
        if !matches!(self.streams[index].status, StreamStatus::Queued) {
            return None;
        }
        let feed = self.resume_feed(index);
        Some(self.model.config().num_blocks * feed.len().div_ceil(self.pool.page_rows()))
    }

    /// Retires active streams that can no longer accept a token, releasing
    /// their pool pages (windowed streams evict instead of finishing).
    fn finish_exhausted_streams(&mut self) {
        let shared = Arc::clone(self.session.shared());
        for stream in &mut self.streams {
            if matches!(stream.status, StreamStatus::Active)
                && stream.context.remaining_capacity() == 0
                && !stream.is_windowed()
            {
                stream.context.reset();
                stream.status = StreamStatus::Finished;
                shared.emit(
                    Some(stream.corr),
                    EventKind::Finish {
                        generated: (stream.tokens.len() - stream.prompt_len) as u64,
                    },
                );
                self.stats.completed += 1;
                self.stats.leaves += 1;
            }
        }
    }

    /// Builds the catch-up feed of a queued stream: the K/V rows it held when
    /// parked (trimmed to the eviction window when the resume would overflow
    /// `max_seq_len`, mirroring the eviction a never-parked stream would have
    /// performed) followed by its unfed tokens.
    fn resume_feed(&self, index: usize) -> Vec<u32> {
        let stream = &self.streams[index];
        let tail = stream.catchup.len() + (stream.tokens.len() - stream.fed);
        let mut feed = stream.parked_resident.clone().unwrap_or_default();
        if let EvictionPolicy::SlidingWindow { keep_last } = stream.context.eviction() {
            if feed.len() + tail > self.model.config().max_seq_len {
                let keep = keep_last.min(feed.len());
                feed.drain(..feed.len() - keep);
            }
        }
        feed.extend_from_slice(&stream.catchup);
        feed.extend_from_slice(&stream.tokens[stream.fed..]);
        feed
    }

    /// (Re)starts queued streams whose pages now fit, oldest slot first. A
    /// pool-exhausted attempt rolls back, leaves the stream queued, and stops
    /// the pass (later streams would only fail the same way this tick).
    fn resume_queued_streams(
        &mut self,
        results: &mut [Option<u32>],
        tick: u64,
    ) -> Result<(), LlmError> {
        let page_rows = self.pool.page_rows();
        let blocks = self.model.config().num_blocks;
        let shared = Arc::clone(self.session.shared());
        for (index, slot) in results.iter_mut().enumerate() {
            if !matches!(self.streams[index].status, StreamStatus::Queued) {
                continue;
            }
            let feed = self.resume_feed(index);
            // Cheap gate: skip the attempt when the pool visibly lacks pages.
            let est = blocks * feed.len().div_ceil(page_rows);
            if est > self.pool.pages_free() {
                continue;
            }
            let stream = &mut self.streams[index];
            match stream.context.prefill_last(&feed, &mut self.session) {
                Ok(logits) => {
                    let resumed = stream.parked_resident.take().is_some();
                    stream.fed = stream.tokens.len();
                    stream.status = StreamStatus::Active;
                    stream.last_advanced_tick = tick;
                    let next = argmax(&logits);
                    stream.tokens.push(next);
                    *slot = Some(next);
                    self.stats.joins += 1;
                    if resumed {
                        self.stats.resumes += 1;
                        self.stats.resume_reprefill_rows += feed.len() as u64;
                        shared.emit(
                            Some(stream.corr),
                            EventKind::Resume {
                                reprefill_rows: feed.len() as u64,
                            },
                        );
                    } else {
                        shared.emit(Some(stream.corr), EventKind::Activate);
                    }
                    if !stream.activated {
                        stream.activated = true;
                        self.stats.admitted += 1;
                        self.admission.note_admitted();
                    }
                }
                // Lost the race for pages (or hit an injected exhaustion):
                // the pass rolled back, the stream stays queued and retryable.
                Err(LlmError::KvPoolExhausted {
                    requested_pages,
                    free_pages,
                }) => {
                    shared.emit(
                        Some(stream.corr),
                        EventKind::PoolExhausted {
                            requested_pages: requested_pages as u64,
                            free_pages: free_pages as u64,
                        },
                    );
                    break;
                }
                Err(err) => return Err(err),
            }
        }
        Ok(())
    }

    /// Chunked-mode activation: moves queued streams whose catch-up feed fits
    /// the pool into the active set **without feeding anything** — the feed
    /// becomes the stream's `catchup` backlog, drained `prefill_chunk_rows`
    /// per tick inside the batched lockstep pass. (A prefix-attached context
    /// keeps its shared resident rows; only the pages past them are gated.)
    fn activate_queued_streams(&mut self) {
        let page_rows = self.pool.page_rows();
        let blocks = self.model.config().num_blocks;
        let shared = Arc::clone(self.session.shared());
        for index in 0..self.streams.len() {
            if !matches!(self.streams[index].status, StreamStatus::Queued) {
                continue;
            }
            let feed = self.resume_feed(index);
            // Cheap gate: resident rows are always a whole-page multiple, so
            // the feed's own pages are exactly the growth the stream needs.
            let est = blocks * feed.len().div_ceil(page_rows);
            if est > self.pool.pages_free() {
                continue;
            }
            let stream = &mut self.streams[index];
            let resumed = stream.parked_resident.take().is_some();
            stream.catchup = feed;
            stream.fed = stream.tokens.len();
            stream.status = StreamStatus::Active;
            self.stats.joins += 1;
            if resumed {
                self.stats.resumes += 1;
                self.stats.resume_reprefill_rows += stream.catchup.len() as u64;
                shared.emit(
                    Some(stream.corr),
                    EventKind::Resume {
                        reprefill_rows: stream.catchup.len() as u64,
                    },
                );
            } else {
                shared.emit(Some(stream.corr), EventKind::Activate);
            }
            if !stream.activated {
                stream.activated = true;
                self.stats.admitted += 1;
                self.admission.note_admitted();
            }
        }
    }

    /// Picks the preemption victim among the lockstep-ready streams: fewest
    /// tokens decoded, ties to the least recently advanced, then the lowest
    /// index — a deterministic order, so drills reproduce exactly.
    fn preemption_victim(&self, ready: &[usize]) -> usize {
        ready
            .iter()
            .copied()
            .min_by_key(|&i| {
                let stream = &self.streams[i];
                (
                    stream.tokens.len() - stream.prompt_len,
                    stream.last_advanced_tick,
                    i,
                )
            })
            .expect("ready set is non-empty")
    }

    /// Advances the group one tick and returns, per stream, the token it
    /// generated (`None` for slots that did not advance: at capacity, still
    /// queued, shed, or cancelled).
    ///
    /// Tick order: retire streams at capacity (freeing their pages), then
    /// admit queued streams whose pages now fit — in unchunked mode via
    /// separate one-shot catch-up prefills, in chunked mode by queuing their
    /// feed as a backlog — then advance every active stream together through
    /// [`TransformerModel::advance_many`]: one batched pass, one fused
    /// normalization request per site carrying each stream's rows (one decode
    /// token, or up to `prefill_chunk_rows` backlog rows). When that pass hits
    /// pool exhaustion, the group parks a victim (fewest tokens decoded, ties
    /// to least recently advanced) and retries with the survivors.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors ([`LlmError`]), including
    /// [`LlmError::KvPoolExhausted`] when even a single stream cannot make
    /// progress (parking the last ready stream cannot free enough pages for
    /// its own resume). A failed tick is **retry-safe**: every underlying pass
    /// rolls back on error, so streams keep a consistent token/K-V state —
    /// parked streams stay queued, advanced streams keep their token — and
    /// calling `step_all` again resumes exactly where the tick stopped.
    pub fn step_all(&mut self) -> Result<Vec<Option<u32>>, LlmError> {
        self.stats.ticks += 1;
        let tick = self.stats.ticks;
        let shared = Arc::clone(self.session.shared());
        let mut results = vec![None; self.streams.len()];
        self.finish_exhausted_streams();
        if self.prefill_chunk_rows == 0 {
            self.resume_queued_streams(&mut results, tick)?;
        } else {
            self.activate_queued_streams();
        }
        // Lockstep pass with preempt-and-retry: every active stream not
        // already stepped by a resume above contributes its next feed — one
        // decode token, or (chunked mode) up to `prefill_chunk_rows` prompt
        // rows from its catch-up backlog — in one batched variable-length
        // pass. A stream emits a token only on the pass that exhausts its
        // feed; mid-prefill rows produce no token this tick.
        loop {
            let ready: Vec<usize> = self
                .streams
                .iter()
                .enumerate()
                .filter(|(i, stream)| results[*i].is_none() && stream.is_lockstep_ready())
                .map(|(i, _)| i)
                .collect();
            if ready.is_empty() {
                return Ok(results);
            }
            let feeds: Vec<Vec<u32>> = ready
                .iter()
                .map(|&i| {
                    let stream = &self.streams[i];
                    if stream.catchup.is_empty() {
                        debug_assert_eq!(stream.fed + 1, stream.tokens.len());
                        stream.tokens[stream.fed..].to_vec()
                    } else {
                        let take = self.prefill_chunk_rows.min(stream.catchup.len());
                        stream.catchup[..take].to_vec()
                    }
                })
                .collect();
            let feed_refs: Vec<&[u32]> = feeds.iter().map(Vec::as_slice).collect();
            let mut contexts: Vec<&mut DecodeContext<'m>> = self
                .streams
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| ready.contains(i))
                .map(|(_, stream)| &mut stream.context)
                .collect();
            // Span profiling: the advance clock runs only with a sink
            // installed. The measured span covers attention + MLP + logits
            // model-side; the normalization phase inside it is timed
            // separately by the engine worker (`serve.phase.normalize_ns`).
            let advance_started = shared.obs().map(|_| Instant::now());
            match self
                .model
                .advance_many(&mut contexts, &feed_refs, &mut self.session)
            {
                Ok(logits) => {
                    if let (Some(obs), Some(t)) = (shared.obs(), advance_started) {
                        obs.record("group.phase.advance_ns", ns_since(t));
                    }
                    let mut tick_rows = 0u64;
                    for (row, &i) in ready.iter().enumerate() {
                        let stream = &mut self.streams[i];
                        let rows = feeds[row].len();
                        if stream.catchup.is_empty() {
                            stream.fed += rows;
                        } else {
                            stream.catchup.drain(..rows);
                            shared.emit(
                                Some(stream.corr),
                                EventKind::ChunkDrain { rows: rows as u64 },
                            );
                        }
                        stream.last_advanced_tick = tick;
                        self.stats.occupied_rows += rows as u64;
                        tick_rows += rows as u64;
                        if stream.catchup.is_empty() && stream.fed == stream.tokens.len() {
                            let next = argmax(logits.row(row));
                            stream.tokens.push(next);
                            results[i] = Some(next);
                        }
                    }
                    if let Some(obs) = shared.obs() {
                        obs.record("group.tick_rows", tick_rows);
                    }
                    return Ok(results);
                }
                Err(LlmError::KvPoolExhausted {
                    requested_pages,
                    free_pages,
                }) => {
                    shared.emit(
                        None,
                        EventKind::PoolExhausted {
                            requested_pages: requested_pages as u64,
                            free_pages: free_pages as u64,
                        },
                    );
                    if ready.len() == 1 {
                        // Parking the only ready stream cannot help: its own
                        // resume would need at least the pages it holds now.
                        return Err(LlmError::KvPoolExhausted {
                            requested_pages,
                            free_pages,
                        });
                    }
                    // The failed pass rolled every context back; park the
                    // victim and retry with one fewer stream.
                    let victim = self.preemption_victim(&ready);
                    self.streams[victim].park();
                    shared.emit(Some(self.streams[victim].corr), EventKind::Preempt);
                    self.stats.preemptions += 1;
                    self.stats.leaves += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }

    /// Runs up to `ticks` lockstep rounds, returning the total number of tokens
    /// generated (streams stop contributing once they reach capacity).
    ///
    /// # Errors
    ///
    /// Propagates the first [`DecodeGroup::step_all`] error.
    pub fn decode(&mut self, ticks: usize) -> Result<usize, LlmError> {
        let mut generated = 0;
        for _ in 0..ticks {
            generated += self.step_all()?.iter().flatten().count();
        }
        Ok(generated)
    }
}

/// Greedy arg-max over a logits row.
fn argmax(logits: &[f32]) -> u32 {
    logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i as u32)
        .expect("non-empty vocabulary")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{KvPoolPolicy, ServeConfig, ServeEngine};
    use haan::{BackendSelection, HaanConfig};
    use haan_llm::norm::ReferenceNormalizer;
    use haan_llm::{ModelConfig, StreamingModel, TransformerModel};

    fn engine() -> ServeEngine {
        ServeEngine::start(ServeConfig {
            normalizer: HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            },
            ..Default::default()
        })
    }

    #[test]
    fn group_matches_private_full_recompute_streams() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompts: [&[u32]; 3] = [&[2, 9, 4], &[1, 7], &[5, 5, 5, 5]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        assert_eq!(group.len(), 3);
        assert!(!group.is_empty());
        assert_eq!(group.model().seed(), 23);
        const TICKS: usize = 5;
        let generated = group.decode(TICKS).unwrap();
        assert_eq!(generated, 3 * TICKS);
        for (i, prompt) in prompts.iter().enumerate() {
            let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
            let expected = oracle
                .decode(TICKS, &mut ReferenceNormalizer::new())
                .unwrap();
            assert_eq!(group.generated(i), expected.as_slice(), "stream {i}");
            assert_eq!(group.tokens(i).len(), prompt.len() + TICKS);
            assert_eq!(group.status(i), StreamStatus::Active);
        }
        let stats = group.stats();
        assert_eq!((stats.offered, stats.admitted, stats.shed), (3, 3, 0));
        assert_eq!(stats.ticks, TICKS as u64);
        // Lockstep ticks carry one row per stream: rows/batch must exceed 1.
        assert!(engine.stats().mean_batch_occupancy_rows() > 1.0);
        let _ = group.session().anchor_state();
        engine.shutdown();
    }

    #[test]
    fn exhausted_streams_stop_contributing_rows() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let max = model.config().max_seq_len;
        let mut engine = engine();
        // One stream a single token from the end, one with plenty of room.
        let long: Vec<u32> = (0..(max as u32 - 1)).map(|i| i % 8).collect();
        let prompts: [&[u32]; 2] = [&long, &[3, 1]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        let first = group.step_all().unwrap();
        assert!(first.iter().all(Option::is_some), "prefill tick fills both");
        assert_eq!(
            group.remaining_capacity(0),
            1,
            "one slot left after prefill"
        );
        let second = group.step_all().unwrap();
        assert!(second.iter().all(Option::is_some));
        assert_eq!(group.remaining_capacity(0), 0);
        assert_eq!(group.ready_streams(), 1);
        let third = group.step_all().unwrap();
        assert!(third[0].is_none(), "full stream must be skipped, not error");
        assert!(third[1].is_some());
        assert_eq!(group.status(0), StreamStatus::Finished);
        assert_eq!(group.stats().completed, 1);
        engine.shutdown();
    }

    #[test]
    fn pool_pressure_queues_streams_and_stuck_groups_fail_typed() {
        // An engine pool with room for one stream's prompt but not two: the
        // second stream queues at admission, the first activates on tick 1 —
        // and once neither the active stream can grow nor the queued one fit,
        // ticks fail with the typed pool error, retry-safely.
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = ServeEngine::start(ServeConfig {
            normalizer: HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            },
            // 6 pages of 4 rows; each 4-token prompt estimates 4 pages
            // (tiny_test has 4 blocks), so the watermark (4.5 pages) admits
            // exactly one.
            kv_pool: KvPoolPolicy {
                page_rows: 4,
                capacity_rows: 24,
            },
            ..Default::default()
        });
        let prompts: [&[u32]; 2] = [&[1, 2, 3, 4], &[5, 6, 7, 8]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        assert_eq!(group.stats().queued, 1);
        let first = group.step_all().unwrap();
        assert!(first[0].is_some(), "admitted stream prefills");
        assert!(first[1].is_none(), "queued stream waits without erroring");
        assert_eq!(group.status(0), StreamStatus::Active);
        assert_eq!(group.status(1), StreamStatus::Queued);
        // Stream 0 now holds 4 full pages; growing it needs one page per
        // block (4 > 2 free), and stream 1's resume needs 4. Nobody can move:
        // the tick fails typed, and retries neither panic nor corrupt state.
        for _ in 0..2 {
            let err = group.step_all().unwrap_err();
            assert!(matches!(err, LlmError::KvPoolExhausted { .. }), "{err:?}");
            assert_eq!(group.tokens(0).len(), prompts[0].len() + 1);
            assert_eq!(group.tokens(1).len(), prompts[1].len());
        }
        engine.shutdown();
    }

    #[test]
    fn preempted_streams_resume_bit_identically() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompts: [&[u32]; 2] = [&[2, 9, 4], &[1, 7, 3]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        group.decode(2).unwrap();
        // Park stream 0 by hand: its pages free, its history stays.
        let pages_before = engine.kv_pool(model.config().embedding_dim).pages_in_use();
        assert!(group.preempt(0));
        assert_eq!(group.status(0), StreamStatus::Queued);
        assert!(
            engine.kv_pool(model.config().embedding_dim).pages_in_use() < pages_before,
            "preemption must free the victim's pages"
        );
        assert!(
            !group.preempt(0),
            "queued streams cannot be preempted again"
        );
        // The next ticks resume it transparently…
        group.decode(3).unwrap();
        assert_eq!(group.status(0), StreamStatus::Active);
        let stats = group.stats();
        assert_eq!((stats.preemptions, stats.resumes), (1, 1));
        assert!(stats.resume_reprefill_rows > 0);
        // …and both streams still match their solo oracles exactly.
        for (i, prompt) in prompts.iter().enumerate() {
            let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
            let expected = oracle.decode(5, &mut ReferenceNormalizer::new()).unwrap();
            assert_eq!(group.generated(i), expected.as_slice(), "stream {i}");
        }
        engine.shutdown();
    }

    #[test]
    fn cancelled_streams_free_pages_and_never_decode_again() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompts: [&[u32]; 2] = [&[2, 9, 4], &[1, 7, 3]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        group.decode(2).unwrap();
        let generated_at_cancel = group.generated(0).len();
        assert!(group.cancel(0));
        assert!(!group.cancel(0), "cancel is not idempotent-true");
        assert_eq!(group.status(0), StreamStatus::Cancelled);
        assert_eq!(group.remaining_capacity(0), 0);
        let results = group.step_all().unwrap();
        assert!(results[0].is_none());
        assert!(results[1].is_some());
        assert_eq!(
            group.generated(0).len(),
            generated_at_cancel,
            "cancelled streams keep their history but stop decoding"
        );
        engine.shutdown();
    }

    #[test]
    fn invalid_groups_are_rejected() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        assert!(engine.decode_group(&model, &[]).is_err());
        let bad: [&[u32]; 2] = [&[1, 2], &[40_000]];
        assert!(engine.decode_group(&model, &bad).is_err());
        engine.shutdown();
    }

    #[test]
    fn never_ticked_group_reports_zero_mean_occupancy() {
        // Satellite: a group that has never ticked must report 0.0, not NaN.
        assert_eq!(GroupStats::default().mean_tick_occupancy_rows(), 0.0);
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let group = engine.empty_decode_group(&model).unwrap();
        assert!(group.is_empty());
        assert_eq!(group.stats().mean_tick_occupancy_rows(), 0.0);
        engine.shutdown();
    }

    #[test]
    fn migrated_streams_continue_bit_identically() {
        // Two groups on one engine (same model, same pool — a valid move even
        // without a router): extract an in-flight stream from one, adopt it
        // into the other, and the combined transcript must match the solo
        // full-recompute oracle token for token.
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompts: [&[u32]; 2] = [&[2, 9, 4], &[1, 7, 3]];
        let mut source = engine.decode_group(&model, &prompts).unwrap();
        let mut dest = engine.empty_decode_group(&model).unwrap();
        source.decode(3).unwrap();
        let corr = source.correlation_id(0);
        let migrated = source.extract_stream(0).unwrap();
        assert_eq!(migrated.correlation_id(), corr);
        assert_eq!(migrated.tokens().len(), prompts[0].len() + 3);
        assert_eq!(source.status(0), StreamStatus::Migrated);
        assert_eq!(source.remaining_capacity(0), 0);
        assert!(!source.cancel(0), "tombstones cannot be cancelled");
        assert!(
            source.extract_stream(0).is_err(),
            "tombstones cannot migrate twice"
        );
        let slot = dest.adopt_stream(migrated).unwrap();
        assert_eq!(dest.status(slot), StreamStatus::Queued);
        assert_eq!(dest.correlation_id(slot), corr);
        dest.decode(4).unwrap();
        source.decode(4).unwrap();
        // The move cost exactly one transparent resume on the destination.
        assert_eq!(dest.stats().resumes, 1);
        assert!(dest.stats().resume_reprefill_rows > 0);
        for (prompt, (group, index), ticks) in [
            (prompts[0], (&dest, slot), 7usize),
            (prompts[1], (&source, 1), 7usize),
        ] {
            let mut oracle = StreamingModel::new_full_recompute(&model, prompt).unwrap();
            let expected = oracle
                .decode(ticks, &mut ReferenceNormalizer::new())
                .unwrap();
            assert_eq!(group.generated(index), expected.as_slice());
        }
        engine.shutdown();
    }

    #[test]
    fn never_activated_migrants_reprefill_their_whole_prompt() {
        // A queued, never-activated stream migrates with fed reset: its
        // destination prefills the full prompt and parity still holds.
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompts: [&[u32]; 1] = [&[2, 9, 4, 6]];
        let mut source = engine.decode_group(&model, &prompts).unwrap();
        let mut dest = engine.empty_decode_group(&model).unwrap();
        let migrated = source.extract_stream(0).unwrap();
        let slot = dest.adopt_stream(migrated).unwrap();
        dest.decode(5).unwrap();
        assert_eq!(dest.status(slot), StreamStatus::Active);
        // Never activated at the source: admission is counted where the
        // stream first actually runs.
        assert_eq!(dest.stats().resumes, 0, "no park happened — no resume");
        let mut oracle = StreamingModel::new_full_recompute(&model, prompts[0]).unwrap();
        let expected = oracle.decode(5, &mut ReferenceNormalizer::new()).unwrap();
        assert_eq!(dest.generated(slot), expected.as_slice());
        engine.shutdown();
    }

    #[test]
    fn eviction_changes_are_rejected_after_the_first_tick() {
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 23).unwrap();
        let mut engine = engine();
        let prompts: [&[u32]; 1] = [&[2, 9, 4]];
        let mut group = engine.decode_group(&model, &prompts).unwrap();
        assert!(group
            .set_eviction(0, EvictionPolicy::SlidingWindow { keep_last: 8 })
            .is_ok());
        group.step_all().unwrap();
        assert!(group.set_eviction(0, EvictionPolicy::Reject).is_err());
        engine.shutdown();
    }
}
