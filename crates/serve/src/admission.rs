//! Admission control: gating new decode streams against live K/V pool pressure.
//!
//! PR 5 made `KvBlockPool` a bounded shared arena; this module makes it a
//! *managed* one. Instead of letting every offered stream race the pool and
//! fail mid-stack with [`LlmError::KvPoolExhausted`](haan_llm::LlmError), the
//! engine consults an [`AdmissionController`] **before** a stream allocates
//! anything, using a watermark policy over the pool's live page counters:
//!
//! * **admit** while the stream's estimated footprint keeps projected occupancy
//!   at or below [`AdmissionPolicy::queue_above`] of the pool;
//! * **queue** above the watermark — the stream holds no pages and is prefilled
//!   by its [`DecodeGroup`](crate::DecodeGroup) as soon as pages free up;
//! * **shed** with a typed [`ServeError::Shed`](crate::ServeError) (carrying a
//!   retry-after hint) when the queue is full or the stream could never fit.
//!
//! Decisions are pure functions of the policy and the observed counters
//! ([`AdmissionController::decide`]), so every drill is reproducible; the
//! controller adds only monotone telemetry counters ([`AdmissionStats`]).

use haan_llm::KvBlockPool;
use haan_obs::ObsSink;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The watermark policy of the admission controller.
///
/// All fields have serviceable defaults, so partial construction works:
///
/// ```
/// use haan_serve::AdmissionPolicy;
///
/// let policy = AdmissionPolicy {
///     max_queued: 8,
///     ..Default::default()
/// };
/// assert_eq!(policy.queue_above, 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// Occupancy watermark as a fraction of the pool's total pages: a stream is
    /// admitted only while `pages_in_use + projected + its estimate` stays at
    /// or below this fraction; above it, streams queue. The slack between the
    /// watermark and 1.0 is the growth headroom already-admitted streams decode
    /// into before preemption kicks in.
    pub queue_above: f64,
    /// Most streams allowed to sit queued at once; offers beyond this are shed.
    pub max_queued: usize,
    /// Retry-after hint carried by [`ServeError::Shed`](crate::ServeError),
    /// microseconds.
    pub retry_after_us: u64,
    /// Extra rows per block added to the prompt length when estimating a
    /// stream's footprint, reserving decode-growth headroom at admission time.
    pub reserve_rows: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            queue_above: 0.75,
            max_queued: usize::MAX,
            retry_after_us: 10_000,
            reserve_rows: 0,
        }
    }
}

/// What the controller decided for one offered stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The stream fits under the watermark: start it now.
    Admit,
    /// The pool is above the watermark: hold the stream (no pages allocated)
    /// until admitted streams free capacity.
    Queue,
    /// The queue is full (or the stream can never fit): refuse, telling the
    /// client when to retry.
    Shed {
        /// Suggested client backoff before re-offering, microseconds.
        retry_after_us: u64,
    },
}

/// Monotone admission telemetry, snapshotted by
/// [`AdmissionController::stats`] /
/// [`ServeEngine::admission_stats`](crate::ServeEngine::admission_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Streams offered to the controller.
    pub offered: u64,
    /// Streams that actually started decoding (admitted immediately, or queued
    /// and later activated).
    pub admitted: u64,
    /// Offers that were queued at decision time.
    pub queued: u64,
    /// Offers refused with [`ServeError::Shed`](crate::ServeError).
    pub shed: u64,
}

impl AdmissionStats {
    /// Fraction of offered streams that were shed (0 when nothing was offered).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// The engine-wide admission controller: one watermark policy plus monotone
/// counters. Decisions are pure ([`AdmissionController::decide`]); the stateful
/// entry points only add counting.
#[derive(Debug, Default)]
pub struct AdmissionController {
    policy: AdmissionPolicy,
    offered: AtomicU64,
    admitted: AtomicU64,
    queued: AtomicU64,
    shed: AtomicU64,
    /// Observability sink mirroring the counters as `admission.*` metrics.
    obs: Option<Arc<dyn ObsSink>>,
}

impl AdmissionController {
    /// Creates a controller under `policy` with zeroed counters.
    #[must_use]
    pub fn new(policy: AdmissionPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Installs (or clears) an observability sink: every counted decision is
    /// mirrored into it as `admission.offered` / `admission.queued` /
    /// `admission.shed` / `admission.admitted`.
    #[must_use]
    pub fn with_obs_sink(mut self, obs: Option<Arc<dyn ObsSink>>) -> Self {
        self.obs = obs;
        self
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Estimated pool footprint of a stream, in pages: every transformer block
    /// keeps its own page table, so a stream of `rows` cached positions holds
    /// `blocks × ceil((rows + reserve_rows) / page_rows)` pages.
    #[must_use]
    pub fn page_estimate(&self, pool: &KvBlockPool, blocks: usize, rows: usize) -> usize {
        blocks.max(1) * (rows + self.policy.reserve_rows).div_ceil(pool.page_rows())
    }

    /// [`AdmissionController::page_estimate`] for a stream whose first
    /// `shared_rows` positions map already-materialized pages of an interned
    /// [`KvPrefix`](haan_llm::KvPrefix): the shared whole pages are refcounted,
    /// not copied, so only the pages past the prefix count against the
    /// watermark. `shared_rows` is always a whole-page multiple (the exporter
    /// enforces it), so the subtraction is exact, not heuristic.
    #[must_use]
    pub fn page_estimate_shared(
        &self,
        pool: &KvBlockPool,
        blocks: usize,
        rows: usize,
        shared_rows: usize,
    ) -> usize {
        let full = (rows + self.policy.reserve_rows).div_ceil(pool.page_rows());
        let shared = (shared_rows / pool.page_rows()).min(full);
        blocks.max(1) * (full - shared)
    }

    /// The pure watermark decision for one stream: `est_pages` is the stream's
    /// own estimated footprint, `projected_pages` the combined estimate of
    /// streams already accepted in this offer batch but not yet resident (their
    /// pages are spoken for), and `queued_now` how many streams are already
    /// waiting.
    #[must_use]
    pub fn decide(
        &self,
        pool: &KvBlockPool,
        est_pages: usize,
        projected_pages: usize,
        queued_now: usize,
    ) -> AdmissionDecision {
        let shed = AdmissionDecision::Shed {
            retry_after_us: self.policy.retry_after_us,
        };
        let total = pool.pages_total();
        if est_pages > total {
            // Queuing cannot help a stream larger than the whole pool.
            return shed;
        }
        let in_use = total - pool.pages_free();
        let projected_occupancy = (in_use + projected_pages + est_pages) as f64;
        if projected_occupancy <= self.policy.queue_above * total as f64 {
            AdmissionDecision::Admit
        } else if queued_now < self.policy.max_queued {
            AdmissionDecision::Queue
        } else {
            shed
        }
    }

    /// [`AdmissionController::decide`] plus counting: `offered` always, and
    /// `queued`/`shed` as decided. `admitted` is **not** counted here — it
    /// counts activations, which the caller reports via
    /// [`AdmissionController::note_admitted`] when the stream actually starts
    /// decoding (immediately for admitted streams, later for queued ones).
    #[must_use]
    pub fn offer(
        &self,
        pool: &KvBlockPool,
        est_pages: usize,
        projected_pages: usize,
        queued_now: usize,
    ) -> AdmissionDecision {
        self.offered.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.counter_add("admission.offered", 1);
        }
        let decision = self.decide(pool, est_pages, projected_pages, queued_now);
        match decision {
            AdmissionDecision::Admit => {}
            AdmissionDecision::Queue => {
                self.queued.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.counter_add("admission.queued", 1);
                }
            }
            AdmissionDecision::Shed { .. } => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.counter_add("admission.shed", 1);
                }
            }
        }
        decision
    }

    /// Records one queued-or-admitted stream actually starting to decode.
    pub fn note_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.counter_add("admission.admitted", 1);
        }
    }

    /// Records one offer refused outside [`AdmissionController::offer`] (e.g. a
    /// standalone stream that cannot queue treating `Queue` as a shed).
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.counter_add("admission.shed", 1);
        }
    }

    /// Snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            offered: self.offered.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> std::sync::Arc<KvBlockPool> {
        // 10 pages of 4 rows.
        KvBlockPool::shared(40, 4, 8)
    }

    #[test]
    fn watermark_splits_admit_queue_shed() {
        let pool = pool();
        let controller = AdmissionController::new(AdmissionPolicy {
            queue_above: 0.5, // watermark at 5 of 10 pages
            max_queued: 1,
            retry_after_us: 123,
            reserve_rows: 0,
        });
        // 4 rows per stream, 1 block → 1 page each.
        assert_eq!(controller.page_estimate(&pool, 1, 4), 1);
        // First five offers fit under the watermark.
        let mut projected = 0;
        let mut queued = 0;
        for _ in 0..5 {
            assert_eq!(
                controller.offer(&pool, 1, projected, queued),
                AdmissionDecision::Admit
            );
            projected += 1;
        }
        // The sixth queues, the seventh sheds with the policy hint.
        assert_eq!(
            controller.offer(&pool, 1, projected, queued),
            AdmissionDecision::Queue
        );
        queued += 1;
        assert_eq!(
            controller.offer(&pool, 1, projected, queued),
            AdmissionDecision::Shed {
                retry_after_us: 123
            }
        );
        let stats = controller.stats();
        assert_eq!(stats.offered, 7);
        assert_eq!(stats.queued, 1);
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.admitted, 0, "activations are reported separately");
        controller.note_admitted();
        assert_eq!(controller.stats().admitted, 1);
        assert!((stats.shed_rate() - 1.0 / 7.0).abs() < 1e-12);
        assert_eq!(AdmissionStats::default().shed_rate(), 0.0);
    }

    #[test]
    fn streams_larger_than_the_pool_are_always_shed() {
        let pool = pool();
        let controller = AdmissionController::new(AdmissionPolicy::default());
        // 11 pages > the pool's 10: queuing can never help.
        assert!(matches!(
            controller.decide(&pool, 11, 0, 0),
            AdmissionDecision::Shed { .. }
        ));
        // 10 pages exceeds the 7.5-page watermark but fits the pool: queue.
        assert_eq!(controller.decide(&pool, 10, 0, 0), AdmissionDecision::Queue);
    }

    #[test]
    fn shared_prefix_rows_are_free_in_the_estimate() {
        let pool = pool(); // 10 pages of 4 rows
        let controller = AdmissionController::new(AdmissionPolicy::default());
        // 12 total rows, 8 shared: only ceil(12/4) - 8/4 = 1 page per block.
        assert_eq!(controller.page_estimate_shared(&pool, 4, 12, 8), 4);
        // No sharing degenerates to the plain estimate.
        assert_eq!(
            controller.page_estimate_shared(&pool, 4, 12, 0),
            controller.page_estimate(&pool, 4, 12)
        );
        // Sharing can never drive the estimate below zero.
        assert_eq!(controller.page_estimate_shared(&pool, 4, 4, 40), 0);
    }

    #[test]
    fn reserve_rows_inflate_the_estimate() {
        let pool = pool();
        let with_reserve = AdmissionController::new(AdmissionPolicy {
            reserve_rows: 8,
            ..Default::default()
        });
        // 4 blocks × ceil((2 + 8) / 4) = 4 × 3.
        assert_eq!(with_reserve.page_estimate(&pool, 4, 2), 12);
        let without = AdmissionController::new(AdmissionPolicy::default());
        assert_eq!(without.page_estimate(&pool, 4, 2), 4);
        assert_eq!(without.page_estimate(&pool, 0, 2), 1, "blocks floor at 1");
    }

    #[test]
    fn live_pool_occupancy_counts_against_the_watermark() {
        use haan_llm::norm::ReferenceNormalizer;
        use haan_llm::{ModelConfig, TransformerModel};
        // 10 pages of 4 rows, sized for the tiny test model's width.
        let pool = KvBlockPool::shared(40, 4, 32);
        let controller = AdmissionController::new(AdmissionPolicy {
            queue_above: 0.5,
            ..Default::default()
        });
        assert_eq!(controller.decide(&pool, 5, 0, 0), AdmissionDecision::Admit);
        // Occupy 4 pages for real (one page in each of the 4 blocks); the same
        // offer now projects past the 5-page watermark.
        let model = TransformerModel::new(&ModelConfig::tiny_test(), 7).unwrap();
        let mut context = model.start_decode_in(&pool).unwrap();
        context
            .prefill(&[1, 2, 3, 4], &mut ReferenceNormalizer::new())
            .unwrap();
        assert_eq!(pool.pages_in_use(), 4);
        assert_eq!(controller.decide(&pool, 5, 0, 0), AdmissionDecision::Queue);
        assert_eq!(controller.decide(&pool, 1, 0, 0), AdmissionDecision::Admit);
    }
}
