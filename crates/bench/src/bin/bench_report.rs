//! `bench_report` — the machine-readable perf trajectory of the batched
//! normalization engine.
//!
//! Measures ns/element of the normalization paths (scalar oracle vs fused batched vs
//! row-parallel) on paper-width (4096-element) rows, plus per-backend ns/element of
//! the dispatchable execution backends (`BackendSelection::{Scalar, Fused, Parallel,
//! AccelSim}`) through the same `normalize_matrix_into` entry point, plus the fused
//! residual+norm and norm+matmul-epilogue request shapes against their composed
//! decomposition, plus the serving-layer throughput of `haan_serve` (concurrent
//! clients through one `ServeEngine`), plus matmul GFLOP/s of the cache-blocked
//! kernels, and writes the
//! numbers to `BENCH_norm.json` (first CLI argument overrides the output path).
//! Future PRs diff this file to keep the perf trajectory honest.

use haan::{BackendSelection, HaanConfig, HaanNormalizer, ParallelPolicy};
use haan_accel::AccelSimBackend;
use haan_bench::json::JsonValue;
use haan_bench::timing::{measure_default, Measurement};
use haan_bench::{print_experiment_header, MarkdownTable};
use haan_llm::norm::{NormSite, Normalizer, ReferenceNormalizer};
use haan_llm::{Matrix, ModelConfig, ModelFamily, NormKind, StreamingModel, TransformerModel};
use haan_router::{PlacementPolicy, Router, RouterConfig};
use haan_serve::{KvPoolPolicy, SchedulerPolicy, ServeConfig, ServeEngine, ServingStats};

const ROWS: usize = 16;
const COLS: usize = 4096;

fn input_matrix() -> Matrix {
    let data: Vec<f32> = (0..ROWS * COLS)
        .map(|i| ((i as u64 * 2654435761) % 1000) as f32 / 250.0 - 2.0)
        .collect();
    Matrix::from_vec(ROWS, COLS, data).expect("consistent shape")
}

/// Fusion-site workload: enough paper-width (4096-element) rows that the
/// matrices spill past cache, so the fused request shapes are measured against
/// the memory passes they remove rather than L1-resident arithmetic.
const FUSION_ROWS: usize = 1024;
/// Output width of the epilogue consumer. Narrow, so the matmul flops —
/// identical on both paths — do not swamp the intermediate-materialization
/// traffic the fusion removes.
const FUSION_CONSUMER_COLS: usize = 8;

/// One fusion site measured three ways: the fused request shape, the scalar
/// composition (separate add → norm → matmul — the parity oracle and the
/// pre-fusion operation order), and the composed decomposition on the same
/// fused backend (fusion disabled), which isolates the pure fusion gain from
/// the backend's kernel quality.
struct FusionSite {
    name: &'static str,
    fused_ns_per_element: f64,
    composed_ns_per_element: f64,
    same_backend_composed_ns_per_element: f64,
}

impl FusionSite {
    fn speedup_vs_composed(&self) -> f64 {
        self.composed_ns_per_element / self.fused_ns_per_element
    }

    fn speedup_vs_same_backend(&self) -> f64 {
        self.same_backend_composed_ns_per_element / self.fused_ns_per_element
    }
}

/// Measures both fusion sites (residual+norm, norm+matmul epilogue) through the
/// `normalize_residual_into` / `normalize_matmul_into` request shapes on an
/// exact-statistics config — the fused residual single pass only engages when
/// quantization is the identity, so the exact config is where fusion shows its
/// full effect.
fn run_fusion_benchmark() -> [FusionSite; 2] {
    let fusion_matrix = |rows: usize, cols: usize, salt: u64, scale: f32| {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let x = (i as u64).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 1000) as f32 / 500.0 * scale - scale
            })
            .collect();
        Matrix::from_vec(rows, cols, data).expect("consistent shape")
    };
    let input = fusion_matrix(FUSION_ROWS, COLS, 7, 2.0);
    let residual = fusion_matrix(FUSION_ROWS, COLS, 1913, 1.5);
    let gamma: Vec<f32> = (0..COLS).map(|i| 1.0 + (i % 5) as f32 * 0.1).collect();
    let beta: Vec<f32> = (0..COLS).map(|i| (i % 3) as f32 * 0.2 - 0.2).collect();
    let weights = fusion_matrix(COLS, FUSION_CONSUMER_COLS, 31, 0.5);
    let weight_refs = [&weights];
    let site = NormSite {
        layer_index: 0,
        kind: NormKind::LayerNorm,
    };

    let measure_pair = |backend: BackendSelection, fusion: bool| {
        let mut norm = HaanNormalizer::new(HaanConfig {
            backend,
            fusion_enabled: fusion,
            ..HaanConfig::unoptimized()
        });
        let mut summed = Matrix::zeros(FUSION_ROWS, COLS);
        let mut normed = Matrix::zeros(FUSION_ROWS, COLS);
        let residual_m = measure_default(|| {
            norm.normalize_residual_into(
                site,
                &input,
                &residual,
                &gamma,
                &beta,
                &mut summed,
                &mut normed,
            );
            std::hint::black_box(normed.get(0, 0));
        });
        let mut outs = [Matrix::zeros(FUSION_ROWS, FUSION_CONSUMER_COLS)];
        let epilogue_m = measure_default(|| {
            norm.normalize_matmul_into(site, &input, &gamma, &beta, &weight_refs, &mut outs)
                .expect("validated shapes");
            std::hint::black_box(outs[0].get(0, 0));
        });
        let per_element = (FUSION_ROWS * COLS) as f64;
        (
            residual_m.nanos_per_iter / per_element,
            epilogue_m.nanos_per_iter / per_element,
        )
    };

    let (residual_fused, epilogue_fused) = measure_pair(BackendSelection::Fused, true);
    let (residual_same, epilogue_same) = measure_pair(BackendSelection::Fused, false);
    let (residual_scalar, epilogue_scalar) = measure_pair(BackendSelection::Scalar, false);
    [
        FusionSite {
            name: "residual_norm",
            fused_ns_per_element: residual_fused,
            composed_ns_per_element: residual_scalar,
            same_backend_composed_ns_per_element: residual_same,
        },
        FusionSite {
            name: "norm_matmul_epilogue",
            fused_ns_per_element: epilogue_fused,
            composed_ns_per_element: epilogue_scalar,
            same_backend_composed_ns_per_element: epilogue_same,
        },
    ]
}

const SERVING_CLIENTS: usize = 4;
const SERVING_REQUESTS_PER_CLIENT: usize = 64;
const SERVING_ROWS: usize = 4;
const SERVING_COLS: usize = 1024;

/// Drives `SERVING_CLIENTS` concurrent client threads through one `ServeEngine`
/// (exact-statistics config, fused backend) and returns the engine's serving stats
/// plus the end-to-end request throughput.
fn run_serving_benchmark() -> (ServingStats, f64) {
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        scheduler: SchedulerPolicy {
            max_batch_rows: SERVING_CLIENTS * SERVING_ROWS,
            max_wait_us: 500,
            ..Default::default()
        },
        ..Default::default()
    });
    let gamma = vec![1.0f32; SERVING_COLS];
    let beta = vec![0.0f32; SERVING_COLS];
    let started = std::time::Instant::now();
    let clients: Vec<_> = (0..SERVING_CLIENTS)
        .map(|client| {
            let mut session = engine.session();
            let gamma = gamma.clone();
            let beta = beta.clone();
            std::thread::spawn(move || {
                for request in 0..SERVING_REQUESTS_PER_CLIENT {
                    let site = NormSite {
                        layer_index: request % 4,
                        kind: NormKind::LayerNorm,
                    };
                    let data: Vec<f32> = (0..SERVING_ROWS * SERVING_COLS)
                        .map(|i| {
                            let x = (i + request * 131 + client * 7919) as u64;
                            ((x * 2654435761) % 1000) as f32 / 250.0 - 2.0
                        })
                        .collect();
                    let input = Matrix::from_vec(SERVING_ROWS, SERVING_COLS, data)
                        .expect("consistent shape");
                    std::hint::black_box(
                        session
                            .normalize(site, &input, &gamma, &beta)
                            .expect("serving round trip"),
                    );
                }
            })
        })
        .collect();
    for handle in clients {
        handle.join().expect("serving client thread");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.stats();
    let requests_per_s = (SERVING_CLIENTS * SERVING_REQUESTS_PER_CLIENT) as f64 / elapsed;
    engine.shutdown();
    (stats, requests_per_s)
}

/// Sequence lengths of the decode benchmark (the sequence length *reached* after
/// the timed steps).
const DECODE_SEQS: [usize; 2] = [64, 256];
/// Greedy steps timed per run (after one untimed step that absorbs the prefill).
const DECODE_TIMED_STEPS: usize = 7;
/// Runs per configuration; tokens/s is aggregated over all of them.
const DECODE_RUNS: usize = 3;

/// The decode-benchmark subject: laptop-scale widths but a 256-position context,
/// so the O(seq²) vs O(seq) difference at `DECODE_SEQS` is what dominates.
fn decode_bench_model() -> TransformerModel {
    let config = ModelConfig {
        name: "decode-bench".to_string(),
        family: ModelFamily::Gpt2,
        num_blocks: 2,
        embedding_dim: 64,
        num_heads: 4,
        mlp_dim: 128,
        vocab_size: 128,
        max_seq_len: *DECODE_SEQS.iter().max().expect("non-empty"),
        final_norm: true,
        paper_embedding_dim: 64,
    };
    TransformerModel::new(&config, 42).expect("valid decode benchmark model")
}

struct DecodePoint {
    seq: usize,
    prefill_tokens_per_s: f64,
    cached_tokens_per_s: f64,
    full_recompute_tokens_per_s: f64,
}

impl DecodePoint {
    fn cached_speedup(&self) -> f64 {
        self.cached_tokens_per_s / self.full_recompute_tokens_per_s
    }
}

/// Measures prefill throughput plus cached vs full-recompute greedy decode
/// tokens/s at sequence length `seq`. Both decode paths run the same
/// `StreamingModel` loop through the same normalizer type; the only variable is
/// whether the prefix is recomputed (`new_full_recompute`) or cached (`new`).
fn run_decode_benchmark(model: &TransformerModel, seq: usize) -> DecodePoint {
    let vocab = model.config().vocab_size as u32;
    let prompt: Vec<u32> = (0..(seq - DECODE_TIMED_STEPS - 1) as u32)
        .map(|i| i % vocab)
        .collect();

    let mut prefill_elapsed = 0.0f64;
    let mut cached_elapsed = 0.0f64;
    let mut full_elapsed = 0.0f64;
    for _ in 0..DECODE_RUNS {
        // Prefill: one batched incremental pass over the whole prompt.
        let mut ctx = model.start_decode();
        let mut norm = ReferenceNormalizer::new();
        let started = std::time::Instant::now();
        std::hint::black_box(ctx.prefill(&prompt, &mut norm).expect("prefill"));
        prefill_elapsed += started.elapsed().as_secs_f64();

        // Constant-factor guard (ROADMAP): the context's reusable attention
        // scratch reaches its high-water mark on the first post-prefill step
        // (amortized Vec doubling absorbs the per-step row growth) and must
        // never grow again — steady-state decode allocates nothing per step.
        ctx.step(0, &mut norm).expect("scratch warm-up step");
        let scratch_capacity = ctx.scratch_capacity();
        assert!(scratch_capacity > 0, "the warmed scratch cannot be empty");
        for step in 0..DECODE_TIMED_STEPS as u32 {
            ctx.step(step % vocab, &mut norm).expect("steady step");
        }
        assert_eq!(
            ctx.scratch_capacity(),
            scratch_capacity,
            "attention scratch grew during steady-state decode at seq {seq}"
        );

        // Cached decode: the first (untimed) step absorbs the prompt prefill,
        // then every timed step feeds exactly one token.
        let mut stream = StreamingModel::new(model, &prompt).expect("valid prompt");
        let mut norm = ReferenceNormalizer::new();
        stream.decode_step(&mut norm).expect("warm-up step");
        let started = std::time::Instant::now();
        for _ in 0..DECODE_TIMED_STEPS {
            std::hint::black_box(stream.decode_step(&mut norm).expect("cached step"));
        }
        cached_elapsed += started.elapsed().as_secs_f64();

        // Full-recompute oracle: same loop, whole prefix re-run every step.
        let mut stream = StreamingModel::new_full_recompute(model, &prompt).expect("valid prompt");
        let mut norm = ReferenceNormalizer::new();
        stream.decode_step(&mut norm).expect("warm-up step");
        let started = std::time::Instant::now();
        for _ in 0..DECODE_TIMED_STEPS {
            std::hint::black_box(stream.decode_step(&mut norm).expect("full step"));
        }
        full_elapsed += started.elapsed().as_secs_f64();
    }
    let timed_tokens = (DECODE_RUNS * DECODE_TIMED_STEPS) as f64;
    DecodePoint {
        seq,
        prefill_tokens_per_s: (DECODE_RUNS * prompt.len()) as f64 / prefill_elapsed,
        cached_tokens_per_s: timed_tokens / cached_elapsed,
        full_recompute_tokens_per_s: timed_tokens / full_elapsed,
    }
}

/// Concurrent stream counts of the batched multi-stream decode benchmark.
const MULTI_STREAM_COUNTS: [usize; 3] = [1, 8, 64];
/// Lockstep ticks timed per stream count (after the untimed prefill tick).
const MULTI_STREAM_TICKS: usize = 12;
/// Prompt length of every stream in the multi-stream benchmark.
const MULTI_STREAM_PROMPT: usize = 4;

struct MultiStreamPoint {
    streams: usize,
    aggregate_tokens_per_s: f64,
    /// Rows per engine batch over the timed lockstep ticks only (one row per
    /// stream per site when the group is the lone tenant).
    rows_per_batch: f64,
    requests_per_batch: f64,
    /// Pool pages actually materialized while all streams were alive, in bytes.
    paged_pool_bytes: usize,
    /// What the same streams would preallocate under dense per-stream caches.
    dense_equivalent_bytes: usize,
}

/// Advances `streams` concurrent decode streams in lockstep through one
/// `ServeEngine::decode_group`: every tick issues one fused normalization
/// request per site carrying one row per stream, which is the batching width
/// the paged pool + multi-stream step exist to produce. `obs` is `None` for
/// the perf-gate runs (the zero-cost disabled path) and a live sink for the
/// informational enabled A/B of the observability block.
fn run_multi_stream_benchmark(
    model: &TransformerModel,
    streams: usize,
    obs: Option<std::sync::Arc<dyn haan_obs::ObsSink>>,
) -> MultiStreamPoint {
    let config = model.config();
    let rows_per_stream_block = MULTI_STREAM_PROMPT + MULTI_STREAM_TICKS + 1;
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        scheduler: SchedulerPolicy {
            // One lockstep request per site carries `streams` rows: meeting the
            // threshold exactly dispatches it immediately, so the single-stream
            // point measures compute, not the max-wait timer.
            max_batch_rows: streams,
            max_wait_us: 200,
            ..Default::default()
        },
        kv_pool: KvPoolPolicy {
            page_rows: 16,
            capacity_rows: 2 * streams * config.num_blocks * rows_per_stream_block,
        },
        obs,
        ..Default::default()
    });
    let vocab = config.vocab_size as u32;
    let prompts: Vec<Vec<u32>> = (0..streams)
        .map(|s| {
            (0..MULTI_STREAM_PROMPT as u32)
                .map(|i| (s as u32 * 13 + i * 5) % vocab)
                .collect()
        })
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine
        .decode_group(model, &prompt_refs)
        .expect("valid multi-stream prompts");
    // Untimed prefill tick (per-stream passes: prompts differ in length in
    // general), then timed lockstep ticks.
    group.step_all().expect("prefill tick");
    let after_prefill = engine.stats();
    let started = std::time::Instant::now();
    for _ in 0..MULTI_STREAM_TICKS {
        group.step_all().expect("lockstep tick");
    }
    let elapsed = started.elapsed().as_secs_f64();
    let stats = engine.stats();
    let pool = engine.kv_pool(config.embedding_dim);
    let paged_pool_bytes = pool.bytes_materialized();
    let dense_equivalent_bytes = streams
        * config.num_blocks
        * 2
        * config.max_seq_len
        * config.embedding_dim
        * std::mem::size_of::<f32>();
    drop(group);
    engine.shutdown();
    let tick_batches = stats.batches - after_prefill.batches;
    let tick_rows = stats.rows - after_prefill.rows;
    let tick_requests = stats.requests - after_prefill.requests;
    MultiStreamPoint {
        streams,
        aggregate_tokens_per_s: (streams * MULTI_STREAM_TICKS) as f64 / elapsed,
        rows_per_batch: tick_rows as f64 / tick_batches.max(1) as f64,
        requests_per_batch: tick_requests as f64 / tick_batches.max(1) as f64,
        paged_pool_bytes,
        dense_equivalent_bytes,
    }
}

/// Groups of the routing fleet (4 × 16 streams vs 1 × 64 aggregate).
const ROUTING_GROUPS: usize = 4;
/// Total streams routed in the throughput comparison.
const ROUTING_STREAMS: usize = 64;
/// Timed fleet ticks (after the untimed prefill tick).
const ROUTING_TICKS: usize = 12;
/// Prompt length of the throughput streams.
const ROUTING_PROMPT: usize = 4;
/// Shared-prefix workload of the placement comparison: cohorts × members.
const ROUTING_COHORTS: usize = 8;
const ROUTING_COHORT_MEMBERS: usize = 8;
/// Tokens of each cohort's shared prefix (two 16-row pages).
const ROUTING_SHARED_PREFIX: usize = 32;
/// Streams of the chaos-drain drill.
const ROUTING_CHAOS_STREAMS: usize = 16;

struct RoutingPoint {
    /// Aggregate tok/s of 4 groups × 16 streams ticked concurrently.
    multi_group_tokens_per_s: f64,
    /// Aggregate tok/s of 1 group × 64 streams (the single-tenant baseline).
    single_group_tokens_per_s: f64,
    /// Prefix-attach rate of affinity placement on the cohort workload.
    affinity_hit_rate: f64,
    /// The same workload under least-loaded placement (cohorts scatter).
    least_loaded_hit_rate: f64,
    /// Streams drained off the fault-injected group in the chaos drill.
    chaos_drained_streams: usize,
    /// Rows re-prefilled by the drained streams' resumes at healthy groups —
    /// the whole-fleet cost of the migrations.
    migration_reprefill_rows: u64,
}

/// The per-group engine config of the routing benchmarks, mirroring the
/// multi-stream benchmark's scheduler and pool shape.
fn routing_serve_config(model: &TransformerModel, streams_per_group: usize) -> ServeConfig {
    let config = model.config();
    let rows_per_stream_block = ROUTING_PROMPT + ROUTING_TICKS + 1;
    ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        scheduler: SchedulerPolicy {
            max_batch_rows: streams_per_group,
            max_wait_us: 200,
            ..Default::default()
        },
        kv_pool: KvPoolPolicy {
            page_rows: 16,
            capacity_rows: 2 * streams_per_group * config.num_blocks * rows_per_stream_block,
        },
        ..Default::default()
    }
}

/// Aggregate tok/s of `ROUTING_STREAMS` streams spread over `groups` groups,
/// every group ticking on its own thread — the sharding payoff the router
/// exists to unlock (one group serializes all streams behind one engine
/// worker; N groups are N independent workers).
fn run_routing_throughput(model: &TransformerModel, groups: usize) -> f64 {
    let vocab = model.config().vocab_size as u32;
    let mut router = Router::with_uniform_groups(
        model,
        groups,
        &routing_serve_config(model, ROUTING_STREAMS / groups),
        RouterConfig {
            placement: PlacementPolicy::LeastLoaded,
            auto_prefix_min_count: 0,
            ..RouterConfig::default()
        },
    )
    .expect("routing fleet starts");
    for s in 0..ROUTING_STREAMS {
        let prompt: Vec<u32> = (0..ROUTING_PROMPT as u32)
            .map(|i| (s as u32 * 13 + i * 5) % vocab)
            .collect();
        router.place(&prompt).expect("placement");
    }
    // Untimed prefill tick, then timed concurrent lockstep ticks.
    router.step_all_concurrent().expect("prefill tick");
    let started = std::time::Instant::now();
    for _ in 0..ROUTING_TICKS {
        router.step_all_concurrent().expect("fleet tick");
    }
    let elapsed = started.elapsed().as_secs_f64();
    (ROUTING_STREAMS * ROUTING_TICKS) as f64 / elapsed
}

/// Prefix-attach hit rate of the cohort workload under `placement`: 8 cohorts
/// share a 32-token prefix each; affinity keeps every cohort on the group
/// holding its interned pages, least-loaded scatters them across pools.
fn run_routing_placement(model: &TransformerModel, placement: PlacementPolicy) -> f64 {
    let mut router = Router::with_uniform_groups(
        model,
        ROUTING_GROUPS,
        &routing_serve_config(model, ROUTING_STREAMS / ROUTING_GROUPS),
        RouterConfig {
            placement,
            ..RouterConfig::default()
        },
    )
    .expect("routing fleet starts");
    let vocab = model.config().vocab_size as u32;
    for cohort in 0..ROUTING_COHORTS {
        let shared: Vec<u32> = (0..ROUTING_SHARED_PREFIX as u32)
            .map(|i| (cohort as u32 * 31 + i * 7) % vocab)
            .collect();
        for member in 0..ROUTING_COHORT_MEMBERS {
            let mut prompt = shared.clone();
            prompt.extend((0..4u32).map(|i| (member as u32 * 11 + i) % vocab));
            router.place(&prompt).expect("placement");
        }
    }
    router.stats().prefix_hit_rate()
}

/// The chaos drill: one group's pool is fault-injected dry mid-decode, its
/// streams drain to the healthy groups, and every drained stream must stay
/// bit-identical to its solo full-recompute oracle.
fn run_routing_chaos(model: &TransformerModel) -> (usize, u64) {
    let vocab = model.config().vocab_size as u32;
    let mut router = Router::with_uniform_groups(
        model,
        ROUTING_GROUPS,
        &routing_serve_config(model, ROUTING_CHAOS_STREAMS / ROUTING_GROUPS),
        RouterConfig {
            placement: PlacementPolicy::LeastLoaded,
            auto_prefix_min_count: 0,
            ..RouterConfig::default()
        },
    )
    .expect("routing fleet starts");
    let prompts: Vec<Vec<u32>> = (0..ROUTING_CHAOS_STREAMS)
        .map(|s| {
            // Three tokens against 16-row pages: the first tick has page
            // slack, later growth needs fresh pages from the faulted pool.
            (0..3u32).map(|i| (s as u32 * 17 + i * 3) % vocab).collect()
        })
        .collect();
    let ids: Vec<_> = prompts
        .iter()
        .map(|p| router.place(p).expect("placement"))
        .collect();
    router.decode(1).expect("healthy tick");
    let victim = router.location(ids[0]).0;
    router
        .engine(victim)
        .kv_pool(model.config().embedding_dim)
        .set_alloc_fault(Some(std::sync::Arc::new(|_, _| true)));
    // Page slack means a few ticks pass before the victim group actually
    // needs an allocation; tick until it reports dry.
    let mut exhausted = false;
    for _ in 0..20 {
        if router
            .step_all()
            .expect("fleet survives a dry group")
            .exhausted_groups
            .contains(&victim)
        {
            exhausted = true;
            break;
        }
    }
    assert!(exhausted, "the fault-injected group never ran dry");
    let drained = router.drain_group(victim).expect("drain");
    router.decode(4).expect("post-drain decode");
    for (id, prompt) in ids.iter().zip(&prompts) {
        let generated = router.generated(*id).to_vec();
        let mut oracle = StreamingModel::new_full_recompute(model, prompt).expect("oracle");
        let expected = oracle
            .decode(generated.len(), &mut ReferenceNormalizer::new())
            .expect("oracle decode");
        assert_eq!(
            generated, expected,
            "a drained stream diverged from its solo oracle"
        );
    }
    (drained, router.fleet_stats().totals.resume_reprefill_rows)
}

/// Runs all three routing benchmarks.
fn run_routing_benchmark(model: &TransformerModel) -> RoutingPoint {
    let multi = run_routing_throughput(model, ROUTING_GROUPS);
    let single = run_routing_throughput(model, 1);
    let affinity = run_routing_placement(model, PlacementPolicy::PrefixAffinity);
    let least = run_routing_placement(model, PlacementPolicy::LeastLoaded);
    let (chaos_drained_streams, migration_reprefill_rows) = run_routing_chaos(model);
    RoutingPoint {
        multi_group_tokens_per_s: multi,
        single_group_tokens_per_s: single,
        affinity_hit_rate: affinity,
        least_loaded_hit_rate: least,
        chaos_drained_streams,
        migration_reprefill_rows,
    }
}

/// Overload factor of the robustness drill: offered streams per pool-sized slot.
const ROBUSTNESS_OVERLOAD: usize = 4;
/// Streams the drill pool is sized for (full-length, to the model maximum).
const ROBUSTNESS_POOL_STREAMS: usize = 2;
/// Seed of the drill's fault injector; the drill is bit-reproducible per seed.
const ROBUSTNESS_SEED: u64 = 0xC0FFEE;

struct RobustnessPoint {
    offered: u64,
    admitted: u64,
    queued: u64,
    shed: u64,
    preemptions: u64,
    resumes: u64,
    resume_reprefill_rows: u64,
    completed: u64,
    drill_ticks: u64,
    pool_exhausted_retries: u64,
    injected_exhaustions: u64,
    p99_queue_wait_us: u64,
}

impl RobustnessPoint {
    fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.shed as f64 / self.offered as f64
        }
    }
}

/// The overload drill of `tests/serving_chaos.rs`, measured: a pool sized for
/// `ROBUSTNESS_POOL_STREAMS` full-length streams is offered `ROBUSTNESS_OVERLOAD`×
/// as many prompts under seeded pool-exhaustion injection, and the group runs
/// until every admitted stream completes. The numbers are the admission split,
/// the preemption/resume traffic (with its re-prefill cost), and the engine's
/// p99 queue wait under that pressure.
fn run_robustness_benchmark() -> RobustnessPoint {
    use haan_serve::{AdmissionPolicy, FaultPlan, SeededFaults, StreamStatus};
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid drill model");
    let config = model.config();
    let max = config.max_seq_len;
    let faults = std::sync::Arc::new(SeededFaults::new(
        ROBUSTNESS_SEED,
        FaultPlan {
            exhaust_probability: 0.1,
            max_exhaustions: 4,
            ..Default::default()
        },
    ));
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: ROBUSTNESS_POOL_STREAMS * max * config.num_blocks,
        },
        admission: AdmissionPolicy {
            queue_above: 0.75,
            max_queued: 3,
            retry_after_us: 500,
            reserve_rows: max,
        },
        faults: Some(faults.clone() as std::sync::Arc<dyn haan_serve::FaultInjector>),
        ..Default::default()
    });
    let offered = ROBUSTNESS_OVERLOAD * ROBUSTNESS_POOL_STREAMS;
    let prompts: Vec<Vec<u32>> = (0..offered as u32)
        .map(|i| vec![i % 8, (i + 3) % 8, (i * 5 + 1) % 8, (i + 1) % 8])
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine
        .decode_group(&model, &prompt_refs)
        .expect("overload is not a constructor error");
    let mut pool_exhausted_retries = 0u64;
    loop {
        match group.step_all() {
            Ok(_) => {}
            Err(haan_llm::LlmError::KvPoolExhausted { .. }) => {
                pool_exhausted_retries += 1;
                continue;
            }
            Err(err) => panic!("only pool exhaustion is expected in the drill: {err:?}"),
        }
        let settled = (0..group.len())
            .all(|i| matches!(group.status(i), StreamStatus::Finished | StreamStatus::Shed));
        if settled {
            break;
        }
    }
    let stats = group.stats();
    let injected = faults.injected();
    let p99_queue_wait_us = engine.stats().p99_queue_wait_us;
    drop(group);
    engine.shutdown();
    RobustnessPoint {
        offered: stats.offered,
        admitted: stats.admitted,
        queued: stats.queued,
        shed: stats.shed,
        preemptions: stats.preemptions,
        resumes: stats.resumes,
        resume_reprefill_rows: stats.resume_reprefill_rows,
        completed: stats.completed,
        drill_ticks: stats.ticks,
        pool_exhausted_retries,
        injected_exhaustions: injected.exhaustions,
        p99_queue_wait_us,
    }
}

/// Resident streams of the continuous-batching benchmark.
const CONTINUOUS_WIDTH: usize = 8;
/// Prompt-chunk bound of the chunked configuration (rows per stream per tick).
const CONTINUOUS_CHUNK: usize = 16;
/// Long prompts joined mid-flight, one at a time.
const CONTINUOUS_JOINS: usize = 8;
/// Length of each joining prompt (3 chunk ticks to first token).
const CONTINUOUS_JOIN_PROMPT: usize = 48;
/// Shared-prefix length of the page-sharing comparison (whole pages).
const CONTINUOUS_PREFIX_TOKENS: usize = 64;

struct ContinuousBatchingPoint {
    chunked_occupancy_rows: f64,
    unchunked_occupancy_rows: f64,
    join_latency_p50_us: u64,
    join_latency_p99_us: u64,
    join_first_token_ticks: u64,
    max_resident_token_delay_ticks: u64,
    shared_pool_bytes: usize,
    unshared_pool_bytes: usize,
}

/// One continuous-batching join drill: `CONTINUOUS_WIDTH` resident streams
/// decode while `CONTINUOUS_JOINS` long prompts join one at a time. Returns
/// the group's mean tick occupancy, each join's wall-clock latency to first
/// token (µs) and tick count, and the worst per-tick token delay any already
/// resident stream suffered while a join was prefilling (the acceptance bar:
/// 0 under chunking — residents never miss a tick).
fn run_continuous_join_drill(model: &TransformerModel, chunk: usize) -> (f64, Vec<u64>, u64, u64) {
    let config = model.config();
    let vocab = config.vocab_size as u32;
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        prefill_chunk_rows: chunk,
        kv_pool: KvPoolPolicy {
            page_rows: 16,
            capacity_rows: 8192,
        },
        ..Default::default()
    });
    let prompts: Vec<Vec<u32>> = (0..CONTINUOUS_WIDTH)
        .map(|s| (0..4u32).map(|i| (s as u32 * 13 + i * 5) % vocab).collect())
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine
        .decode_group(model, &prompt_refs)
        .expect("valid resident prompts");
    // Warm ticks: every resident emits from here on.
    for _ in 0..2 {
        group.step_all().expect("warm-up tick");
    }
    let mut resident: Vec<usize> = (0..CONTINUOUS_WIDTH).collect();
    let mut join_latencies_us = Vec::with_capacity(CONTINUOUS_JOINS);
    let mut join_ticks_total = 0u64;
    let mut max_delay_ticks = 0u64;
    for join in 0..CONTINUOUS_JOINS {
        let prompt: Vec<u32> = (0..CONTINUOUS_JOIN_PROMPT as u32)
            .map(|i| (i * 29 + join as u32 * 7 + 3) % vocab)
            .collect();
        let started = std::time::Instant::now();
        let index = group.add_stream(&prompt).expect("join offer");
        let mut delay_this_join = 0u64;
        loop {
            join_ticks_total += 1;
            let results = group.step_all().expect("join tick");
            delay_this_join += resident.iter().filter(|&&i| results[i].is_none()).count() as u64;
            if results[index].is_some() {
                break;
            }
        }
        join_latencies_us.push(started.elapsed().as_micros() as u64);
        max_delay_ticks = max_delay_ticks.max(delay_this_join);
        resident.push(index);
        group.step_all().expect("settle tick");
    }
    let occupancy = group.stats().mean_tick_occupancy_rows();
    drop(group);
    engine.shutdown();
    (
        occupancy,
        join_latencies_us,
        join_ticks_total,
        max_delay_ticks,
    )
}

/// Measures the continuous-batching tentpole: tick occupancy with vs without
/// chunked prefill over the same join drill, join latency percentiles under
/// chunking, and the live pool footprint of `CONTINUOUS_WIDTH` streams behind
/// one interned `CONTINUOUS_PREFIX_TOKENS`-token prefix vs the same streams
/// each materializing their own copy.
fn run_continuous_batching_benchmark(model: &TransformerModel) -> ContinuousBatchingPoint {
    let config = model.config();
    let vocab = config.vocab_size as u32;
    let (chunked_occupancy_rows, mut join_latencies_us, join_ticks, max_delay) =
        run_continuous_join_drill(model, CONTINUOUS_CHUNK);
    let (unchunked_occupancy_rows, _, _, _) = run_continuous_join_drill(model, 0);
    join_latencies_us.sort_unstable();
    let percentile = |p: f64| {
        let rank = ((join_latencies_us.len() as f64 - 1.0) * p).round() as usize;
        join_latencies_us[rank]
    };

    // Page sharing: the same suffix streams behind one interned prefix vs
    // each paying the prefix themselves, live bytes after a few ticks.
    let serve_config = || ServeConfig {
        normalizer: HaanConfig {
            backend: BackendSelection::Fused,
            ..HaanConfig::unoptimized()
        },
        kv_pool: KvPoolPolicy {
            page_rows: 16,
            capacity_rows: 8192,
        },
        ..Default::default()
    };
    let prefix_tokens: Vec<u32> = (0..CONTINUOUS_PREFIX_TOKENS as u32)
        .map(|i| (i * 11) % vocab)
        .collect();
    let suffixes: Vec<Vec<u32>> = (0..CONTINUOUS_WIDTH as u32)
        .map(|s| vec![s % vocab, (s * 17 + 3) % vocab])
        .collect();
    let base_prompt: [u32; 3] = [1, 2, 3];

    let mut shared_engine = ServeEngine::start(serve_config());
    let prefix = shared_engine
        .intern_prefix(model, &prefix_tokens)
        .expect("whole-page prefix");
    let mut shared_group = shared_engine
        .decode_group(model, &[&base_prompt])
        .expect("base stream");
    for suffix in &suffixes {
        shared_group
            .add_stream_with_prefix(&prefix, suffix)
            .expect("attach to shared prefix");
    }
    for _ in 0..4 {
        shared_group.step_all().expect("shared tick");
    }
    let shared_pool_bytes = shared_engine.kv_pool(config.embedding_dim).bytes_in_use();
    drop(shared_group);
    shared_engine.shutdown();

    let mut unshared_engine = ServeEngine::start(serve_config());
    let full_prompts: Vec<Vec<u32>> = suffixes
        .iter()
        .map(|suffix| {
            let mut prompt = prefix_tokens.clone();
            prompt.extend_from_slice(suffix);
            prompt
        })
        .collect();
    let mut unshared_refs: Vec<&[u32]> = vec![&base_prompt];
    unshared_refs.extend(full_prompts.iter().map(Vec::as_slice));
    let mut unshared_group = unshared_engine
        .decode_group(model, &unshared_refs)
        .expect("unshared prompts");
    for _ in 0..4 {
        unshared_group.step_all().expect("unshared tick");
    }
    let unshared_pool_bytes = unshared_engine.kv_pool(config.embedding_dim).bytes_in_use();
    drop(unshared_group);
    unshared_engine.shutdown();

    ContinuousBatchingPoint {
        chunked_occupancy_rows,
        unchunked_occupancy_rows,
        join_latency_p50_us: percentile(0.5),
        join_latency_p99_us: percentile(0.99),
        join_first_token_ticks: join_ticks / CONTINUOUS_JOINS as u64,
        max_resident_token_delay_ticks: max_delay,
        shared_pool_bytes,
        unshared_pool_bytes,
    }
}

/// Instrumentation checks a decode token pays on the hot path with no sink
/// installed (a deliberate over-estimate: per site per tick the engine tests
/// the option a handful of times — gather/normalize/scatter clocks, counters,
/// the dispatch event — plus the pool and group checks).
const OBS_CHECKS_PER_TOKEN: f64 = 64.0;

struct ObservabilityPoint {
    export_ns: f64,
    event_append_ns: f64,
    counter_add_ns: f64,
    histogram_record_ns: f64,
    disabled_check_ns: f64,
    /// Modeled worst-case hot-path overhead of the disabled sink:
    /// `disabled_check_ns × OBS_CHECKS_PER_TOKEN` as a percentage of the
    /// measured ns/token of the widest (sink-free) multi-stream point.
    disabled_overhead_pct: f64,
    /// Informational A/B: the widest multi-stream point re-run with a live
    /// `Obs` sink installed (metrics + flight recorder).
    enabled_tokens_per_s: f64,
}

/// Measures the observability layer itself: registry export cost on a
/// representative metric population, flight-recorder append cost, raw
/// counter/histogram record cost, and — the one the decode hot path actually
/// pays by default — the cost of checking a disabled (`None`) sink.
fn run_observability_benchmark(
    model: &TransformerModel,
    disabled_tokens_per_s: f64,
) -> ObservabilityPoint {
    use haan_obs::{EventKind, Obs, ObsEvent, ObsSink};
    use std::sync::Arc;

    // Populate a registry shaped like the serving drill's real export.
    let obs = Obs::new(4096);
    for site in 0..9u64 {
        obs.counter_add(&format!("haan.skip.site_{site}"), site);
        obs.gauge_set(&format!("haan.skip_rate.site_{site}"), 0.5);
    }
    for name in [
        "serve.batches",
        "serve.requests",
        "serve.rows",
        "pool.exhaustions",
    ] {
        obs.counter_add(name, 7);
    }
    for name in [
        "serve.queue_wait_us",
        "serve.phase.gather_ns",
        "serve.phase.normalize_ns",
        "serve.phase.scatter_ns",
        "group.tick_rows",
        "group.phase.advance_ns",
    ] {
        for v in 0..256u64 {
            obs.record(name, v * 37 + 1);
        }
    }
    let export = measure_default(|| {
        std::hint::black_box(obs.registry().export());
    });
    let event_append = measure_default(|| {
        obs.event(ObsEvent {
            t_us: 1,
            stream: Some(1),
            kind: EventKind::Admit,
        });
    });
    let counter = obs.registry().counter("bench.counter");
    let counter_add = measure_default(|| counter.add(1));
    let histogram = obs.registry().histogram("bench.hist");
    let histogram_record = measure_default(|| histogram.record(1_234));

    // The disabled path: every instrumentation site is one branch on a `None`
    // option. 1024 checks per timed iteration amortize the timer overhead.
    let disabled: Option<Arc<dyn ObsSink>> = None;
    let disabled_check = measure_default(|| {
        for _ in 0..1024 {
            if let Some(sink) = std::hint::black_box(&disabled) {
                sink.counter_add("never", 1);
            }
        }
    });
    let disabled_check_ns = disabled_check.nanos_per_iter / 1024.0;
    let ns_per_token = 1e9 / disabled_tokens_per_s;
    let disabled_overhead_pct = 100.0 * disabled_check_ns * OBS_CHECKS_PER_TOKEN / ns_per_token;

    // Informational enabled A/B at the widest multi-stream point.
    let sink = Obs::shared(1 << 14);
    let enabled = run_multi_stream_benchmark(
        model,
        *MULTI_STREAM_COUNTS.last().expect("non-empty"),
        Some(sink as Arc<dyn ObsSink>),
    );

    ObservabilityPoint {
        export_ns: export.nanos_per_iter,
        event_append_ns: event_append.nanos_per_iter,
        counter_add_ns: counter_add.nanos_per_iter,
        histogram_record_ns: histogram_record.nanos_per_iter,
        disabled_check_ns,
        disabled_overhead_pct,
        enabled_tokens_per_s: enabled.aggregate_tokens_per_s,
    }
}

struct PathResult {
    name: &'static str,
    measurement: Measurement,
}

impl PathResult {
    fn ns_per_element(&self) -> f64 {
        self.measurement.nanos_per_iter / (ROWS * COLS) as f64
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_norm.json".to_string());
    print_experiment_header(
        "BENCH_norm",
        "normalization ns/element (scalar vs fused vs parallel) and matmul GFLOP/s",
    );

    let input = input_matrix();
    let gamma = vec![1.0f32; COLS];
    let beta = vec![0.0f32; COLS];
    let site = NormSite {
        layer_index: 0,
        kind: NormKind::LayerNorm,
    };

    // Scalar oracle: one allocating per-row call per token, exactly what the forward
    // pass did before the batched engine.
    let scalar = PathResult {
        name: "scalar_reference",
        measurement: {
            let mut norm = ReferenceNormalizer::new();
            measure_default(|| {
                for row in 0..ROWS {
                    std::hint::black_box(norm.normalize(site, input.row(row), &gamma, &beta));
                }
            })
        },
    };

    // Fused batched path: chunked one-pass statistics plus the affine apply, written
    // into one reused output matrix.
    let fused = PathResult {
        name: "fused_batched",
        measurement: {
            let mut norm = ReferenceNormalizer::new();
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    };

    // The HAAN engine on an unoptimized config (exact statistics), sequential vs
    // row-parallel: isolates the thread-fan-out gain from the approximation gains.
    let haan_sequential = PathResult {
        name: "haan_exact_sequential",
        measurement: {
            // Pin the fused sequential backend explicitly so this field keeps
            // measuring the sequential kernel whatever the `Auto` heuristic does.
            let config = HaanConfig {
                backend: BackendSelection::Fused,
                ..HaanConfig::unoptimized()
            };
            let mut norm = HaanNormalizer::new(config);
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    };
    let workers = std::thread::available_parallelism().map_or(2, usize::from);
    let haan_parallel = PathResult {
        name: "haan_exact_parallel",
        measurement: {
            let config = HaanConfig {
                parallel: ParallelPolicy::Threads(workers),
                ..HaanConfig::unoptimized()
            };
            let mut norm = HaanNormalizer::new(config);
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    };

    let paths = [&scalar, &fused, &haan_sequential, &haan_parallel];
    let mut table = MarkdownTable::new(vec!["path", "ns/element", "speedup vs scalar"]);
    for path in paths {
        table.push_row(vec![
            path.name.to_string(),
            format!("{:.3}", path.ns_per_element()),
            format!("{:.2}x", scalar.ns_per_element() / path.ns_per_element()),
        ]);
    }
    println!("{}", table.render());

    // Per-backend dispatch: the same `normalize_matrix_into` call routed through each
    // execution backend of the engine on an exact-statistics config, so differences
    // are pure execution cost. The accelerator simulator is a functional/timing
    // model, not a fast path — its number is reported for completeness, not compared.
    AccelSimBackend::install();
    let backend_paths: Vec<PathResult> = [
        (
            "scalar",
            BackendSelection::Scalar,
            ParallelPolicy::Sequential,
        ),
        ("fused", BackendSelection::Fused, ParallelPolicy::Sequential),
        (
            "parallel",
            BackendSelection::Parallel,
            ParallelPolicy::Threads(workers),
        ),
        (
            "accel_sim",
            BackendSelection::AccelSim,
            ParallelPolicy::Sequential,
        ),
    ]
    .into_iter()
    .map(|(name, backend, parallel)| PathResult {
        name,
        measurement: {
            let config = HaanConfig {
                backend,
                parallel,
                ..HaanConfig::unoptimized()
            };
            let mut norm = HaanNormalizer::new(config);
            let mut out = Matrix::zeros(ROWS, COLS);
            measure_default(|| {
                norm.normalize_matrix_into(site, &input, &gamma, &beta, &mut out);
                std::hint::black_box(out.get(0, 0));
            })
        },
    })
    .collect();
    let backend_scalar_ns = backend_paths[0].ns_per_element();
    let mut backend_table =
        MarkdownTable::new(vec!["backend", "ns/element", "speedup vs scalar backend"]);
    for path in &backend_paths {
        backend_table.push_row(vec![
            path.name.to_string(),
            format!("{:.3}", path.ns_per_element()),
            format!("{:.2}x", backend_scalar_ns / path.ns_per_element()),
        ]);
    }
    println!("{}", backend_table.render());

    // Fusion sites: the fused residual+norm and norm+matmul-epilogue request
    // shapes vs the scalar composition (the pre-fusion operation order) and vs
    // the composed decomposition on the same backend (fusion disabled).
    let fusion_sites = run_fusion_benchmark();
    let mut fusion_table = MarkdownTable::new(vec![
        "fusion site",
        "fused ns/element",
        "composed ns/element",
        "speedup",
        "same-backend composed",
        "pure-fusion gain",
    ]);
    for fusion_site in &fusion_sites {
        fusion_table.push_row(vec![
            fusion_site.name.to_string(),
            format!("{:.3}", fusion_site.fused_ns_per_element),
            format!("{:.3}", fusion_site.composed_ns_per_element),
            format!("{:.2}x", fusion_site.speedup_vs_composed()),
            format!("{:.3}", fusion_site.same_backend_composed_ns_per_element),
            format!("{:.2}x", fusion_site.speedup_vs_same_backend()),
        ]);
    }
    println!("{}", fusion_table.render());

    // Serving layer: concurrent clients streaming requests through one ServeEngine,
    // measuring end-to-end request throughput and how well the scheduler coalesces.
    let (serving_stats, serving_requests_per_s) = run_serving_benchmark();
    let mut serving_table = MarkdownTable::new(vec!["serving metric", "value"]);
    serving_table.push_row(vec![
        "requests/s".to_string(),
        format!("{serving_requests_per_s:.0}"),
    ]);
    serving_table.push_row(vec![
        "mean batch occupancy (requests)".to_string(),
        format!("{:.2}", serving_stats.mean_batch_occupancy_requests()),
    ]);
    serving_table.push_row(vec![
        "mean batch occupancy (rows)".to_string(),
        format!("{:.1}", serving_stats.mean_batch_occupancy_rows()),
    ]);
    serving_table.push_row(vec![
        "queue wait p50 / p99 (µs)".to_string(),
        format!(
            "{} / {}",
            serving_stats.p50_queue_wait_us, serving_stats.p99_queue_wait_us
        ),
    ]);
    serving_table.push_row(vec![
        "engine ns/element".to_string(),
        format!("{:.2}", serving_stats.ns_per_element()),
    ]);
    println!("{}", serving_table.render());

    // Decode path: prefill throughput plus cached vs full-recompute greedy decode
    // tokens/s on a 256-position model — the payoff of the stateful
    // DecodeContext/KV-cache API over the stateless O(seq²) loop.
    let decode_model = decode_bench_model();
    let decode_points: Vec<DecodePoint> = DECODE_SEQS
        .iter()
        .map(|&seq| run_decode_benchmark(&decode_model, seq))
        .collect();
    let mut decode_table = MarkdownTable::new(vec![
        "seq",
        "prefill tok/s",
        "cached decode tok/s",
        "full-recompute tok/s",
        "cached speedup",
    ]);
    for point in &decode_points {
        decode_table.push_row(vec![
            point.seq.to_string(),
            format!("{:.0}", point.prefill_tokens_per_s),
            format!("{:.0}", point.cached_tokens_per_s),
            format!("{:.0}", point.full_recompute_tokens_per_s),
            format!("{:.1}x", point.cached_speedup()),
        ]);
    }
    println!("{}", decode_table.render());

    // Batched multi-stream decode: N concurrent streams in lockstep through one
    // engine decode group — one fused normalization request per site per tick,
    // one row per stream — with K/V rows paged out of the engine's shared pool.
    let multi_points: Vec<MultiStreamPoint> = MULTI_STREAM_COUNTS
        .iter()
        .map(|&streams| run_multi_stream_benchmark(&decode_model, streams, None))
        .collect();
    let mut multi_table = MarkdownTable::new(vec![
        "streams",
        "aggregate tok/s",
        "rows/batch",
        "paged pool bytes",
        "dense-equivalent bytes",
    ]);
    for point in &multi_points {
        multi_table.push_row(vec![
            point.streams.to_string(),
            format!("{:.0}", point.aggregate_tokens_per_s),
            format!("{:.1}", point.rows_per_batch),
            point.paged_pool_bytes.to_string(),
            point.dense_equivalent_bytes.to_string(),
        ]);
    }
    println!("{}", multi_table.render());

    // Robustness under overload: the 4× oversubscription drill with seeded
    // fault injection — admission split, preemption/resume traffic, queue wait.
    let robustness = run_robustness_benchmark();
    let mut robustness_table = MarkdownTable::new(vec!["robustness metric", "value"]);
    robustness_table.push_row(vec![
        "offered / admitted / queued / shed".to_string(),
        format!(
            "{} / {} / {} / {}",
            robustness.offered, robustness.admitted, robustness.queued, robustness.shed
        ),
    ]);
    robustness_table.push_row(vec![
        "shed rate".to_string(),
        format!("{:.2}", robustness.shed_rate()),
    ]);
    robustness_table.push_row(vec![
        "preemptions / resumes".to_string(),
        format!("{} / {}", robustness.preemptions, robustness.resumes),
    ]);
    robustness_table.push_row(vec![
        "resume re-prefill rows".to_string(),
        robustness.resume_reprefill_rows.to_string(),
    ]);
    robustness_table.push_row(vec![
        "injected exhaustions / typed retries".to_string(),
        format!(
            "{} / {}",
            robustness.injected_exhaustions, robustness.pool_exhausted_retries
        ),
    ]);
    robustness_table.push_row(vec![
        "p99 queue wait under overload (µs)".to_string(),
        robustness.p99_queue_wait_us.to_string(),
    ]);
    println!("{}", robustness_table.render());

    // Continuous batching: chunked-prefill occupancy vs one-shot activation,
    // join latency while residents keep ticking, and the live pool footprint
    // of prefix sharing vs per-stream prefix copies.
    let continuous = run_continuous_batching_benchmark(&decode_model);
    let mut continuous_table = MarkdownTable::new(vec!["continuous batching metric", "value"]);
    continuous_table.push_row(vec![
        "mean tick occupancy rows (chunked / unchunked)".to_string(),
        format!(
            "{:.1} / {:.1}",
            continuous.chunked_occupancy_rows, continuous.unchunked_occupancy_rows
        ),
    ]);
    continuous_table.push_row(vec![
        "join latency p50 / p99 (µs)".to_string(),
        format!(
            "{} / {}",
            continuous.join_latency_p50_us, continuous.join_latency_p99_us
        ),
    ]);
    continuous_table.push_row(vec![
        "mean ticks to a joiner's first token".to_string(),
        continuous.join_first_token_ticks.to_string(),
    ]);
    continuous_table.push_row(vec![
        "resident tokens delayed during joins".to_string(),
        continuous.max_resident_token_delay_ticks.to_string(),
    ]);
    continuous_table.push_row(vec![
        "pool bytes, shared / unshared prefix".to_string(),
        format!(
            "{} / {}",
            continuous.shared_pool_bytes, continuous.unshared_pool_bytes
        ),
    ]);
    println!("{}", continuous_table.render());

    // Observability: what the instrumentation layer itself costs — export and
    // append micro-costs, and the modeled hot-path tax of the disabled sink
    // against the widest (sink-free) multi-stream point measured above.
    let widest_disabled = multi_points
        .last()
        .expect("at least one multi-stream point")
        .aggregate_tokens_per_s;
    let observability = run_observability_benchmark(&decode_model, widest_disabled);
    let mut obs_table = MarkdownTable::new(vec!["observability metric", "value"]);
    obs_table.push_row(vec![
        "registry export (ns)".to_string(),
        format!("{:.0}", observability.export_ns),
    ]);
    obs_table.push_row(vec![
        "flight-recorder append (ns)".to_string(),
        format!("{:.1}", observability.event_append_ns),
    ]);
    obs_table.push_row(vec![
        "counter add / histogram record (ns)".to_string(),
        format!(
            "{:.1} / {:.1}",
            observability.counter_add_ns, observability.histogram_record_ns
        ),
    ]);
    obs_table.push_row(vec![
        "disabled-sink check (ns)".to_string(),
        format!("{:.3}", observability.disabled_check_ns),
    ]);
    obs_table.push_row(vec![
        "disabled-sink decode overhead (%)".to_string(),
        format!("{:.4}", observability.disabled_overhead_pct),
    ]);
    obs_table.push_row(vec![
        "tok/s, sink disabled / enabled".to_string(),
        format!(
            "{:.0} / {:.0}",
            widest_disabled, observability.enabled_tokens_per_s
        ),
    ]);
    println!("{}", obs_table.render());

    // Routing tier: does sharding 64 streams over 4 concurrently-ticked
    // groups hold aggregate throughput, does prefix-affinity placement beat
    // least-loaded on shared-prefix traffic, and does a chaos drain off a
    // dry group stay bit-identical (asserted inside the drill).
    let routing = run_routing_benchmark(&decode_model);
    let mut routing_table = MarkdownTable::new(vec!["routing metric", "value"]);
    routing_table.push_row(vec![
        format!(
            "tok/s, {ROUTING_GROUPS} groups x {} streams (concurrent)",
            ROUTING_STREAMS / ROUTING_GROUPS
        ),
        format!("{:.0}", routing.multi_group_tokens_per_s),
    ]);
    routing_table.push_row(vec![
        format!("tok/s, 1 group x {ROUTING_STREAMS} streams"),
        format!("{:.0}", routing.single_group_tokens_per_s),
    ]);
    routing_table.push_row(vec![
        "prefix hit rate, affinity / least-loaded".to_string(),
        format!(
            "{:.2} / {:.2}",
            routing.affinity_hit_rate, routing.least_loaded_hit_rate
        ),
    ]);
    routing_table.push_row(vec![
        "chaos drill: streams drained off the dry group".to_string(),
        format!("{}", routing.chaos_drained_streams),
    ]);
    routing_table.push_row(vec![
        "chaos drill: migration re-prefill rows".to_string(),
        format!("{}", routing.migration_reprefill_rows),
    ]);
    println!("{}", routing_table.render());

    // Matmul GFLOP/s of the cache-blocked kernels on a square problem.
    let n = 256;
    let a = Matrix::from_vec(n, n, (0..n * n).map(|i| (i as f32).sin()).collect()).unwrap();
    let b = Matrix::from_vec(n, n, (0..n * n).map(|i| (i as f32).cos()).collect()).unwrap();
    let flops = 2.0 * (n * n * n) as f64;
    let mut out = Matrix::zeros(n, n);
    let matmul = measure_default(|| {
        a.matmul_into(&b, &mut out).expect("square shapes");
        std::hint::black_box(out.get(0, 0));
    });
    let matmul_t = measure_default(|| {
        a.matmul_transposed_into(&b, &mut out)
            .expect("square shapes");
        std::hint::black_box(out.get(0, 0));
    });
    let gflops = |m: &Measurement| flops / m.nanos_per_iter;
    let mut mm_table = MarkdownTable::new(vec!["kernel", "GFLOP/s"]);
    mm_table.push_row(vec![
        "matmul_blocked".to_string(),
        format!("{:.2}", gflops(&matmul)),
    ]);
    mm_table.push_row(vec![
        "matmul_transposed_blocked".to_string(),
        format!("{:.2}", gflops(&matmul_t)),
    ]);
    println!("{}", mm_table.render());

    let path_json = |p: &PathResult| {
        JsonValue::object([
            ("ns_per_element", JsonValue::from(p.ns_per_element())),
            (
                "speedup_vs_scalar",
                JsonValue::from(scalar.ns_per_element() / p.ns_per_element()),
            ),
            ("iterations", JsonValue::from(p.measurement.iterations)),
        ])
    };
    let report = JsonValue::object([
        ("benchmark", JsonValue::from("normalization_batched_engine")),
        (
            "workload",
            JsonValue::object([
                ("rows", JsonValue::from(ROWS)),
                ("cols", JsonValue::from(COLS)),
                ("kind", JsonValue::from("LayerNorm")),
            ]),
        ),
        (
            "normalization",
            JsonValue::object(paths.iter().map(|p| (p.name, path_json(p)))),
        ),
        (
            "backends",
            JsonValue::object(backend_paths.iter().map(|p| {
                (
                    p.name,
                    JsonValue::object([
                        ("ns_per_element", JsonValue::from(p.ns_per_element())),
                        (
                            "speedup_vs_scalar_backend",
                            JsonValue::from(backend_scalar_ns / p.ns_per_element()),
                        ),
                        ("iterations", JsonValue::from(p.measurement.iterations)),
                    ]),
                )
            })),
        ),
        (
            "fusion",
            JsonValue::object(
                [
                    ("rows".to_string(), JsonValue::from(FUSION_ROWS)),
                    ("cols".to_string(), JsonValue::from(COLS)),
                    (
                        "consumer_cols".to_string(),
                        JsonValue::from(FUSION_CONSUMER_COLS),
                    ),
                ]
                .into_iter()
                .chain(fusion_sites.iter().map(|fusion_site| {
                    (
                        fusion_site.name.to_string(),
                        JsonValue::object([
                            (
                                "fused_ns_per_element",
                                JsonValue::from(fusion_site.fused_ns_per_element),
                            ),
                            (
                                "composed_ns_per_element",
                                JsonValue::from(fusion_site.composed_ns_per_element),
                            ),
                            (
                                "speedup_vs_composed",
                                JsonValue::from(fusion_site.speedup_vs_composed()),
                            ),
                            (
                                "same_backend_composed_ns_per_element",
                                JsonValue::from(fusion_site.same_backend_composed_ns_per_element),
                            ),
                            (
                                "speedup_vs_same_backend",
                                JsonValue::from(fusion_site.speedup_vs_same_backend()),
                            ),
                        ]),
                    )
                })),
            ),
        ),
        (
            "serving",
            JsonValue::object([
                ("clients", JsonValue::from(SERVING_CLIENTS)),
                (
                    "requests_per_client",
                    JsonValue::from(SERVING_REQUESTS_PER_CLIENT),
                ),
                ("rows_per_request", JsonValue::from(SERVING_ROWS)),
                ("cols", JsonValue::from(SERVING_COLS)),
                ("requests_per_s", JsonValue::from(serving_requests_per_s)),
                (
                    "mean_batch_occupancy_requests",
                    JsonValue::from(serving_stats.mean_batch_occupancy_requests()),
                ),
                (
                    "mean_batch_occupancy_rows",
                    JsonValue::from(serving_stats.mean_batch_occupancy_rows()),
                ),
                (
                    "p50_queue_wait_us",
                    JsonValue::from(serving_stats.p50_queue_wait_us),
                ),
                (
                    "p99_queue_wait_us",
                    JsonValue::from(serving_stats.p99_queue_wait_us),
                ),
                (
                    "engine_ns_per_element",
                    JsonValue::from(serving_stats.ns_per_element()),
                ),
            ]),
        ),
        (
            "decode",
            JsonValue::object(
                [
                    (
                        "model".to_string(),
                        JsonValue::object([
                            ("blocks", JsonValue::from(decode_model.config().num_blocks)),
                            (
                                "embedding_dim",
                                JsonValue::from(decode_model.config().embedding_dim),
                            ),
                            (
                                "vocab_size",
                                JsonValue::from(decode_model.config().vocab_size),
                            ),
                        ]),
                    ),
                    (
                        "timed_steps_per_run".to_string(),
                        JsonValue::from(DECODE_TIMED_STEPS),
                    ),
                    ("runs".to_string(), JsonValue::from(DECODE_RUNS)),
                ]
                .into_iter()
                .chain(decode_points.iter().map(|point| {
                    (
                        format!("seq_{}", point.seq),
                        JsonValue::object([
                            (
                                "prefill_tokens_per_s",
                                JsonValue::from(point.prefill_tokens_per_s),
                            ),
                            (
                                "cached_decode_tokens_per_s",
                                JsonValue::from(point.cached_tokens_per_s),
                            ),
                            (
                                "full_recompute_decode_tokens_per_s",
                                JsonValue::from(point.full_recompute_tokens_per_s),
                            ),
                            (
                                "cached_speedup_vs_full_recompute",
                                JsonValue::from(point.cached_speedup()),
                            ),
                        ]),
                    )
                })),
            ),
        ),
        (
            "multi_stream_decode",
            JsonValue::object(
                [
                    ("ticks".to_string(), JsonValue::from(MULTI_STREAM_TICKS)),
                    (
                        "prompt_tokens".to_string(),
                        JsonValue::from(MULTI_STREAM_PROMPT),
                    ),
                ]
                .into_iter()
                .chain(multi_points.iter().map(|point| {
                    (
                        format!("streams_{}", point.streams),
                        JsonValue::object([
                            (
                                "aggregate_tokens_per_s",
                                JsonValue::from(point.aggregate_tokens_per_s),
                            ),
                            ("rows_per_batch", JsonValue::from(point.rows_per_batch)),
                            (
                                "requests_per_batch",
                                JsonValue::from(point.requests_per_batch),
                            ),
                            ("paged_pool_bytes", JsonValue::from(point.paged_pool_bytes)),
                            (
                                "dense_equivalent_bytes",
                                JsonValue::from(point.dense_equivalent_bytes),
                            ),
                        ]),
                    )
                })),
            ),
        ),
        (
            "robustness",
            JsonValue::object([
                ("overload_factor", JsonValue::from(ROBUSTNESS_OVERLOAD)),
                (
                    "pool_sized_for_streams",
                    JsonValue::from(ROBUSTNESS_POOL_STREAMS),
                ),
                ("seed", JsonValue::from(ROBUSTNESS_SEED)),
                ("offered", JsonValue::from(robustness.offered)),
                ("admitted", JsonValue::from(robustness.admitted)),
                ("queued", JsonValue::from(robustness.queued)),
                ("shed", JsonValue::from(robustness.shed)),
                ("shed_rate", JsonValue::from(robustness.shed_rate())),
                ("preemptions", JsonValue::from(robustness.preemptions)),
                ("resumes", JsonValue::from(robustness.resumes)),
                (
                    "resume_reprefill_rows",
                    JsonValue::from(robustness.resume_reprefill_rows),
                ),
                ("completed", JsonValue::from(robustness.completed)),
                ("drill_ticks", JsonValue::from(robustness.drill_ticks)),
                (
                    "pool_exhausted_retries",
                    JsonValue::from(robustness.pool_exhausted_retries),
                ),
                (
                    "injected_exhaustions",
                    JsonValue::from(robustness.injected_exhaustions),
                ),
                (
                    "p99_queue_wait_us",
                    JsonValue::from(robustness.p99_queue_wait_us),
                ),
            ]),
        ),
        (
            "continuous_batching",
            JsonValue::object([
                ("resident_streams", JsonValue::from(CONTINUOUS_WIDTH)),
                ("prefill_chunk_rows", JsonValue::from(CONTINUOUS_CHUNK)),
                ("joins", JsonValue::from(CONTINUOUS_JOINS)),
                (
                    "join_prompt_tokens",
                    JsonValue::from(CONTINUOUS_JOIN_PROMPT),
                ),
                ("prefix_tokens", JsonValue::from(CONTINUOUS_PREFIX_TOKENS)),
                (
                    "chunked_tick_occupancy_rows",
                    JsonValue::from(continuous.chunked_occupancy_rows),
                ),
                (
                    "unchunked_tick_occupancy_rows",
                    JsonValue::from(continuous.unchunked_occupancy_rows),
                ),
                (
                    "join_latency_p50_us",
                    JsonValue::from(continuous.join_latency_p50_us),
                ),
                (
                    "join_latency_p99_us",
                    JsonValue::from(continuous.join_latency_p99_us),
                ),
                (
                    "join_first_token_ticks",
                    JsonValue::from(continuous.join_first_token_ticks),
                ),
                (
                    "resident_token_delay_ticks",
                    JsonValue::from(continuous.max_resident_token_delay_ticks),
                ),
                (
                    "shared_prefix_pool_bytes",
                    JsonValue::from(continuous.shared_pool_bytes),
                ),
                (
                    "unshared_prefix_pool_bytes",
                    JsonValue::from(continuous.unshared_pool_bytes),
                ),
            ]),
        ),
        (
            "observability",
            JsonValue::object([
                ("export_ns", JsonValue::from(observability.export_ns)),
                (
                    "event_append_ns",
                    JsonValue::from(observability.event_append_ns),
                ),
                (
                    "counter_add_ns",
                    JsonValue::from(observability.counter_add_ns),
                ),
                (
                    "histogram_record_ns",
                    JsonValue::from(observability.histogram_record_ns),
                ),
                (
                    "disabled_check_ns",
                    JsonValue::from(observability.disabled_check_ns),
                ),
                ("checks_per_token", JsonValue::from(OBS_CHECKS_PER_TOKEN)),
                (
                    "disabled_overhead_pct",
                    JsonValue::from(observability.disabled_overhead_pct),
                ),
                ("disabled_tokens_per_s", JsonValue::from(widest_disabled)),
                (
                    "enabled_tokens_per_s",
                    JsonValue::from(observability.enabled_tokens_per_s),
                ),
            ]),
        ),
        (
            "routing",
            JsonValue::object([
                ("groups", JsonValue::from(ROUTING_GROUPS)),
                ("streams", JsonValue::from(ROUTING_STREAMS)),
                ("ticks", JsonValue::from(ROUTING_TICKS)),
                (
                    "multi_group_tokens_per_s",
                    JsonValue::from(routing.multi_group_tokens_per_s),
                ),
                (
                    "single_group_tokens_per_s",
                    JsonValue::from(routing.single_group_tokens_per_s),
                ),
                (
                    "affinity_hit_rate",
                    JsonValue::from(routing.affinity_hit_rate),
                ),
                (
                    "least_loaded_hit_rate",
                    JsonValue::from(routing.least_loaded_hit_rate),
                ),
                (
                    "chaos_drained_streams",
                    JsonValue::from(routing.chaos_drained_streams),
                ),
                (
                    "migration_reprefill_rows",
                    JsonValue::from(routing.migration_reprefill_rows),
                ),
            ]),
        ),
        (
            "matmul",
            JsonValue::object([
                ("blocked_gflops", JsonValue::from(gflops(&matmul))),
                (
                    "transposed_blocked_gflops",
                    JsonValue::from(gflops(&matmul_t)),
                ),
                ("n", JsonValue::from(n)),
            ]),
        ),
        ("parallel_workers", JsonValue::from(workers)),
    ]);
    let rendered = report.render_pretty();
    std::fs::write(&out_path, format!("{rendered}\n")).expect("write BENCH_norm.json");
    println!("wrote {out_path}");

    let fused_speedup = scalar.ns_per_element() / fused.ns_per_element();
    assert!(
        fused_speedup >= 1.0,
        "fused path regressed below the scalar oracle ({fused_speedup:.2}x)"
    );
    for fusion_site in &fusion_sites {
        assert!(
            fusion_site.speedup_vs_composed() >= 1.2,
            "fused {} ({:.3} ns/element) must beat the composed path \
             ({:.3} ns/element) by >= 1.2x on {COLS}-wide rows, got {:.2}x",
            fusion_site.name,
            fusion_site.fused_ns_per_element,
            fusion_site.composed_ns_per_element,
            fusion_site.speedup_vs_composed()
        );
        assert!(
            fusion_site.speedup_vs_same_backend() >= 1.0,
            "fused {} regressed below its own composed decomposition ({:.2}x)",
            fusion_site.name,
            fusion_site.speedup_vs_same_backend()
        );
    }
    let longest = decode_points.last().expect("at least one decode point");
    assert!(
        longest.cached_speedup() >= 3.0,
        "cached decode regressed to {:.2}x of full recompute at seq {}",
        longest.cached_speedup(),
        longest.seq
    );
    let widest = multi_points
        .last()
        .expect("at least one multi-stream point");
    assert!(
        widest.rows_per_batch > 1.0,
        "batched multi-stream decode at {} streams put only {:.2} rows per site per tick",
        widest.streams,
        widest.rows_per_batch
    );
    assert!(
        widest.paged_pool_bytes < widest.dense_equivalent_bytes,
        "paged K/V ({} bytes) should undercut dense per-stream caches ({} bytes)",
        widest.paged_pool_bytes,
        widest.dense_equivalent_bytes
    );
    assert_eq!(
        robustness.admitted, robustness.completed,
        "every admitted stream of the overload drill must complete"
    );
    assert!(
        robustness.shed > 0 && robustness.preemptions > 0 && robustness.resumes > 0,
        "a 4x overload drill with no shedding or preemption measured nothing"
    );
    assert!(
        continuous.chunked_occupancy_rows > continuous.unchunked_occupancy_rows,
        "chunked prefill ({:.1} rows/tick) must out-batch one-shot activation ({:.1})",
        continuous.chunked_occupancy_rows,
        continuous.unchunked_occupancy_rows
    );
    assert_eq!(
        continuous.max_resident_token_delay_ticks, 0,
        "a joining prompt delayed a resident stream's token past its tick"
    );
    assert!(
        continuous.shared_pool_bytes < continuous.unshared_pool_bytes,
        "prefix sharing ({} bytes) should undercut per-stream copies ({} bytes)",
        continuous.shared_pool_bytes,
        continuous.unshared_pool_bytes
    );
    assert!(
        observability.disabled_overhead_pct < 1.0,
        "a disabled obs sink should cost < 1% of a decode token, got {:.4}%",
        observability.disabled_overhead_pct
    );
    // With one hardware thread the concurrent-group comparison measures pure
    // scheduler overhead, not sharding — hold it to a sanity floor there and
    // to the full 10% bar wherever real parallelism exists.
    let routing_floor = if workers > 1 { 0.9 } else { 0.5 };
    assert!(
        routing.multi_group_tokens_per_s >= routing_floor * routing.single_group_tokens_per_s,
        "sharding over {ROUTING_GROUPS} groups dropped aggregate throughput \
         below {routing_floor:.1}x of one group ({:.0} vs {:.0} tok/s, {workers} workers)",
        routing.multi_group_tokens_per_s,
        routing.single_group_tokens_per_s
    );
    assert!(
        routing.affinity_hit_rate > routing.least_loaded_hit_rate,
        "prefix-affinity placement ({:.2}) should beat least-loaded ({:.2}) \
         on a shared-prefix workload",
        routing.affinity_hit_rate,
        routing.least_loaded_hit_rate
    );
    assert!(
        routing.chaos_drained_streams > 0,
        "the chaos drill drained no streams off the dry group"
    );
}
