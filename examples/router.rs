//! Routing-tier demo: a four-group fleet behind one prefix-aware router.
//!
//! A `Router` owns N independent serving groups (engine + K/V pool +
//! admission each) and decides placement per session. The demo walks the
//! tentpole mechanisms end to end:
//!
//! 1. A shared-prefix cohort arrives; the router's detector notices the
//!    recurring system prompt, interns it once on the cohort's home group,
//!    and prefix-affinity placement routes every later sharer there, so the
//!    prompt's K/V pages are computed once and attached many times.
//! 2. Unrelated traffic spreads least-loaded across the other groups.
//! 3. One stream is migrated to another group mid-decode over the
//!    park/resume seam — pages freed at the source, a transparent re-prefill
//!    at the destination — and its transcript stays bit-identical.
//!
//! Every stream (shared, solo, and migrated alike) is checked token-for-token
//! against a solo full-recompute decode under the same HAAN normalizer and
//! skip plan: routing changes *where* work runs, never the tokens.
//!
//! Run with: `cargo run --release --example router`

use haan::{BackendSelection, HaanConfig, HaanNormalizer, SkipPlan};
use haan_llm::{ModelConfig, StreamingModel, TransformerModel};
use haan_router::{Router, RouterConfig};
use haan_serve::{KvPoolPolicy, ServeConfig, StreamStatus};

const GROUPS: usize = 4;
const TICKS: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = HaanConfig {
        label: "routing demo".to_string(),
        backend: BackendSelection::Fused,
        ..Default::default()
    };
    let plan = SkipPlan {
        start: 2,
        end: 5,
        decay: -0.05,
        correlation: -1.0,
        calibration_anchor_log_isd: -0.25,
    };
    let model = TransformerModel::new(&ModelConfig::tiny_test(), 2024)?;
    let serve = ServeConfig {
        normalizer: config.clone(),
        plan: Some(plan),
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: 2 * model.config().num_blocks * model.config().max_seq_len,
        },
        ..Default::default()
    };
    let mut router = Router::with_uniform_groups(&model, GROUPS, &serve, RouterConfig::default())?;
    println!("fleet: {} groups, prefix-affinity placement\n", GROUPS);

    // A cohort sharing an 8-token (two-page) system prompt, plus solo traffic.
    let shared: Vec<u32> = (1..=8).collect();
    let mut prompts: Vec<Vec<u32>> = (0..4u32)
        .map(|i| {
            let mut p = shared.clone();
            p.extend([20 + i, 30 + i]);
            p
        })
        .collect();
    prompts.extend((0..4u32).map(|i| vec![40 + i, 45 + i, 50 + i]));
    let ids: Vec<_> = prompts
        .iter()
        .map(|p| router.place(p))
        .collect::<Result<_, _>>()?;
    for (id, prompt) in ids.iter().zip(&prompts) {
        let (group, _) = router.location(*id);
        println!(
            "placed {:>2}-token prompt on group {group} (corr {:#x})",
            prompt.len(),
            router.correlation_id(*id)
        );
    }
    let stats = router.stats();
    println!(
        "\nplacement: {} sessions, {} prefix attach(es), {} auto-interned prefix(es), \
         hit rate {:.0}%",
        stats.placed,
        stats.prefix_hits,
        stats.auto_interned,
        100.0 * stats.prefix_hit_rate()
    );
    assert!(stats.auto_interned >= 1, "the cohort prefix must promote");
    assert!(stats.prefix_hits >= 3, "sharers must attach, not recompute");

    // Decode a few ticks, then migrate one cohort member to a different
    // group mid-stream.
    router.decode(3)?;
    let mover = ids[1];
    let (from, _) = router.location(mover);
    let to = (from + 1) % GROUPS;
    router.migrate(mover, to)?;
    println!(
        "\nmigrated stream {:#x}: group {from} -> group {to}",
        router.correlation_id(mover)
    );
    router.decode(TICKS - 3)?;

    // Parity: every stream — shared-prefix, solo, and the migrant — matches
    // its solo full-recompute oracle under the same normalizer and plan.
    for (id, prompt) in ids.iter().zip(&prompts) {
        assert_eq!(router.status(*id), StreamStatus::Active);
        let mut norm = HaanNormalizer::new(config.clone()).with_plan(plan);
        let mut stream = StreamingModel::new_full_recompute(&model, prompt)?;
        let expected = stream.decode(TICKS, &mut norm)?;
        assert_eq!(
            router.generated(*id),
            expected.as_slice(),
            "routed stream diverged from its solo oracle"
        );
    }
    let fleet = router.fleet_stats();
    println!(
        "decode: {TICKS} ticks x {} streams, fleet mean occupancy {:.1} rows/tick, \
         {} resume re-prefill row(s) paid for the migration",
        ids.len(),
        fleet.totals.mean_tick_occupancy_rows(),
        fleet.totals.resume_reprefill_rows
    );
    assert_eq!(router.stats().migrations, 1);
    assert!(fleet.totals.resume_reprefill_rows > 0);
    println!(
        "\nall {} routed streams bit-identical to their solo oracles",
        ids.len()
    );
    Ok(())
}
