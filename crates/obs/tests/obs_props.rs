//! Property coverage for the observability primitives: the log-scale
//! histogram's quantiles against an exact sorted-sample oracle, and the
//! flight recorder's ring wraparound / correlation-ID integrity.

use haan_obs::{EventKind, FlightRecorder, Histogram, ObsEvent};
use proptest::prelude::*;

/// The rank both the histogram and the oracle use for quantile `q` over
/// `count` samples: the smallest index whose cumulative count reaches
/// `ceil(q·count)` (1-based, floored at 1).
fn rank(q: f64, count: usize) -> usize {
    ((q * count as f64).ceil() as usize).max(1)
}

proptest! {
    #[test]
    fn histogram_quantiles_stay_within_an_eighth_of_the_exact_oracle(
        samples in proptest::collection::vec(0u64..50_000_000, 8..256),
    ) {
        let histogram = Histogram::default();
        for &v in &samples {
            histogram.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.90, 0.99] {
            let exact = sorted[rank(q, sorted.len()) - 1];
            let estimate = histogram.quantile(q);
            // The estimate is the midpoint of the log bucket holding the exact
            // rank statistic, so it is off by at most one bucket width —
            // ≤ 1/8 of the value at 8 sub-buckets per octave (exact below 16).
            let tolerance = exact as f64 / 8.0;
            prop_assert!(
                (estimate as f64 - exact as f64).abs() <= tolerance,
                "q={q}: estimate {estimate} vs exact {exact} (tolerance {tolerance})"
            );
        }
    }

    #[test]
    fn histogram_count_sum_min_max_are_exact(
        samples in proptest::collection::vec(0u64..1_000_000, 1..128),
    ) {
        let histogram = Histogram::default();
        for &v in &samples {
            histogram.record(v);
        }
        let snapshot = histogram.snapshot();
        prop_assert_eq!(snapshot.count, samples.len() as u64);
        prop_assert_eq!(snapshot.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snapshot.min, *samples.iter().min().expect("non-empty"));
        prop_assert_eq!(snapshot.max, *samples.iter().max().expect("non-empty"));
        let per_bucket: u64 = snapshot.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(per_bucket, samples.len() as u64);
    }

    #[test]
    fn histogram_snapshot_round_trips_through_registry_json(
        samples in proptest::collection::vec(0u64..10_000_000, 0..64),
    ) {
        let registry = haan_obs::ObsRegistry::new();
        let histogram = registry.histogram("prop.hist");
        for &v in &samples {
            histogram.record(v);
        }
        registry.counter("prop.count").add(samples.len() as u64);
        let snapshot = registry.export();
        let parsed = haan_obs::ObsSnapshot::from_json(&snapshot.to_json());
        prop_assert_eq!(parsed.expect("export parses"), snapshot);
    }

    #[test]
    fn recorder_ring_keeps_the_newest_events_and_counts_drops(
        capacity in 1usize..40,
        streams in proptest::collection::vec(0u64..6, 1..120),
    ) {
        let recorder = FlightRecorder::new(capacity);
        let all: Vec<ObsEvent> = streams
            .iter()
            .enumerate()
            .map(|(t, &stream)| ObsEvent {
                t_us: t as u64,
                stream: Some(stream),
                kind: EventKind::Admit,
            })
            .collect();
        for &event in &all {
            recorder.record(event);
        }
        let held = recorder.events();
        let expected_len = all.len().min(capacity);
        prop_assert_eq!(held.len(), expected_len);
        // The ring holds exactly the newest `capacity` events, in append order.
        prop_assert_eq!(&held[..], &all[all.len() - expected_len..]);
        prop_assert_eq!(recorder.appended(), all.len() as u64);
        prop_assert_eq!(recorder.dropped(), (all.len() - expected_len) as u64);
        // Per-stream views are the same suffix filtered by correlation ID:
        // order preserved, nothing leaked across streams, union complete.
        let mut per_stream_total = 0;
        for id in 0..6u64 {
            let view = recorder.stream_events(id);
            let oracle: Vec<ObsEvent> = all[all.len() - expected_len..]
                .iter()
                .filter(|e| e.stream == Some(id))
                .copied()
                .collect();
            prop_assert_eq!(&view[..], &oracle[..]);
            per_stream_total += view.len();
        }
        prop_assert_eq!(per_stream_total, expected_len);
    }
}
