//! Chaos suite of the overload-safe serving layer: a deterministic,
//! seeded fault-injection drill proving that admission control, preemption,
//! and resume keep every *admitted* stream **bit-identical** to a solo decode
//! while an oversubscribed pool sheds the rest with typed errors — no panics,
//! no hung clients — and that the whole drill reproduces exactly per seed.
//!
//! The drill shape follows the acceptance bar of the overload issue: a K/V
//! pool sized for N full-length streams is offered 4N prompts. Admission
//! splits the offers into admit / queue / shed; pool pressure forces at least
//! one preemption (pages freed, token history kept) and at least one resume
//! (transparent re-prefill); the injector adds pool exhaustions in the middle
//! of ticks. Despite all of it, every stream that decoded at all must match
//! `StreamingModel::new_full_recompute` — the same oracle the parity suite in
//! `tests/kv_decode.rs` holds the fault-free paths to.

use haan::{BackendSelection, HaanConfig};
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::{LlmError, ModelConfig, StreamingModel, TransformerModel};
use haan_obs::{Obs, ObsSink};
use haan_serve::{
    AdmissionPolicy, FaultPlan, GroupStats, InjectedFaults, KvPoolPolicy, SeededFaults,
    ServeConfig, ServeEngine, ServeError, StreamStatus,
};
use std::sync::Arc;

fn model() -> TransformerModel {
    TransformerModel::new(&ModelConfig::tiny_test(), 42).expect("valid test model")
}

fn fused() -> HaanConfig {
    HaanConfig {
        backend: BackendSelection::Fused,
        ..HaanConfig::unoptimized()
    }
}

/// Everything observable about one drill run; two runs with the same seed must
/// produce equal transcripts.
#[derive(Debug, PartialEq, Eq)]
struct DrillTranscript {
    tokens: Vec<Vec<u32>>,
    statuses: Vec<StreamStatus>,
    stats: GroupStats,
    injected: InjectedFaults,
    pool_exhausted_retries: u32,
    ticks: u32,
}

/// Offers 4N prompts to a pool sized for N full-length streams and drives the
/// group until every non-shed stream finishes, retrying ticks that fail with
/// the typed pool error (injected or real — both are retry-safe).
fn run_overload_drill(seed: u64) -> DrillTranscript {
    let model = model();
    let config = model.config();
    let max = config.max_seq_len;
    let blocks = config.num_blocks;
    const N: usize = 2;
    let faults = Arc::new(SeededFaults::new(
        seed,
        FaultPlan {
            exhaust_probability: 0.1,
            max_exhaustions: 4,
            ..Default::default()
        },
    ));
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: fused(),
        // Pool sized for exactly N streams decoded all the way to max_seq_len.
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: N * max * blocks,
        },
        // Conservative admission: every offer is costed at prompt + max_seq
        // rows, and at most 3 offers may wait in the queued state.
        admission: AdmissionPolicy {
            queue_above: 0.75,
            max_queued: 3,
            retry_after_us: 500,
            reserve_rows: max,
        },
        faults: Some(Arc::clone(&faults) as Arc<dyn haan_serve::FaultInjector>),
        ..Default::default()
    });
    let prompts: Vec<Vec<u32>> = (0..(4 * N) as u32)
        .map(|i| vec![i % 8, (i + 3) % 8, (i * 5 + 1) % 8, (i + 1) % 8])
        .collect();
    let prompt_refs: Vec<&[u32]> = prompts.iter().map(Vec::as_slice).collect();
    let mut group = engine
        .decode_group(&model, &prompt_refs)
        .expect("overload is not a constructor error");
    let mut pool_exhausted_retries = 0u32;
    let mut ticks = 0u32;
    loop {
        ticks += 1;
        assert!(ticks < 2_000, "the drill must converge");
        match group.step_all() {
            Ok(_) => {}
            // Retry-safe by contract: the failed tick rolled everything back.
            Err(LlmError::KvPoolExhausted { .. }) => {
                pool_exhausted_retries += 1;
                continue;
            }
            Err(err) => panic!("only pool exhaustion is expected, got {err:?}"),
        }
        let all_settled = (0..group.len())
            .all(|i| matches!(group.status(i), StreamStatus::Finished | StreamStatus::Shed));
        if all_settled {
            break;
        }
    }
    let transcript = DrillTranscript {
        tokens: (0..group.len()).map(|i| group.tokens(i).to_vec()).collect(),
        statuses: (0..group.len()).map(|i| group.status(i)).collect(),
        stats: group.stats(),
        injected: faults.injected(),
        pool_exhausted_retries,
        ticks,
    };
    // Parity: every stream that decoded at all is bit-identical to the same
    // prompt decoding alone on a private full-recompute oracle, preemptions
    // and injected exhaustions notwithstanding. Shed slots never decoded.
    for (i, prompt) in prompts.iter().enumerate() {
        match transcript.statuses[i] {
            StreamStatus::Finished => {
                let mut oracle =
                    StreamingModel::new_full_recompute(&model, prompt).expect("oracle stream");
                let mut expected = oracle
                    .decode(max - prompt.len(), &mut ReferenceNormalizer::new())
                    .expect("oracle decode");
                // A group stream fills its K/V context to max_seq_len, so it
                // emits one token more than the token-count-capped solo
                // stream; the stateless forward over the full sequence is the
                // oracle for that last emission.
                let full = model
                    .logits(oracle.tokens(), &mut ReferenceNormalizer::new())
                    .expect("stateless oracle");
                let last = full.row(max - 1);
                expected.push(
                    last.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                        .map(|(i, _)| i as u32)
                        .expect("non-empty vocabulary"),
                );
                assert_eq!(
                    &transcript.tokens[i][prompt.len()..],
                    expected.as_slice(),
                    "admitted stream {i} must match its solo oracle"
                );
            }
            StreamStatus::Shed => {
                assert_eq!(
                    transcript.tokens[i].as_slice(),
                    prompt.as_slice(),
                    "shed stream {i} must never decode"
                );
            }
            other => panic!("stream {i} ended the drill as {other:?}"),
        }
    }
    engine.shutdown();
    transcript
}

#[test]
fn overload_drill_sheds_typed_preempts_and_stays_bit_identical() {
    let transcript = run_overload_drill(0xC0FFEE);
    let stats = transcript.stats;
    // 4N offered against a pool sized for N: the admission split is exact.
    assert_eq!(stats.offered, 8);
    assert_eq!(stats.queued, 3, "three offers wait under the watermark");
    assert_eq!(stats.shed, 4, "offers past the queue bound are shed");
    assert_eq!(stats.admitted, 4, "every non-shed stream eventually ran");
    assert_eq!(stats.completed, 4);
    // The drill is only interesting if overload actually bit: at least one
    // preemption with its resume, and at least one injected mid-tick
    // exhaustion, must have occurred.
    assert!(stats.preemptions >= 1, "stats: {stats:?}");
    assert!(stats.resumes >= 1, "stats: {stats:?}");
    assert!(stats.resume_reprefill_rows > 0);
    assert!(
        transcript.injected.exhaustions >= 1,
        "the injector must have fired: {:?}",
        transcript.injected
    );
}

#[test]
fn chaos_drill_reproduces_exactly_per_seed() {
    // Same seed → the same admissions, the same victims, the same injected
    // faults, the same tokens, tick for tick.
    let first = run_overload_drill(7);
    let second = run_overload_drill(7);
    assert_eq!(first, second);
    // A different seed moves the injected faults (the drill stays correct —
    // parity is asserted inside the run — but the transcript may differ).
    let other = run_overload_drill(8);
    assert_eq!(other.stats.completed, 4);
}

/// Solo full-recompute oracle for a group stream that ran to capacity: the
/// group fills its K/V context to `max_seq_len`, so it emits one token more
/// than a token-count-capped solo decode; the stateless forward over the full
/// sequence supplies that last emission.
fn solo_oracle_to_capacity(model: &TransformerModel, prompt: &[u32]) -> Vec<u32> {
    let max = model.config().max_seq_len;
    let mut oracle = StreamingModel::new_full_recompute(model, prompt).expect("oracle stream");
    let mut expected = oracle
        .decode(max - prompt.len(), &mut ReferenceNormalizer::new())
        .expect("oracle decode");
    let full = model
        .logits(oracle.tokens(), &mut ReferenceNormalizer::new())
        .expect("stateless oracle");
    let last = full.row(max - 1);
    expected.push(
        last.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i as u32)
            .expect("non-empty vocabulary"),
    );
    expected
}

#[test]
fn chunked_prefix_drill_survives_mid_chunk_exhaustion_and_sharer_preemption() {
    // The continuous-batching chaos bar: ~4× overload where every offered
    // stream decodes behind one interned shared prefix, prompts prefill in
    // 2-row chunks inside the lockstep passes, the injector exhausts the pool
    // mid-chunk, and one sharer is *forcibly preempted mid-prefill*. Partial
    // prefills must resume bit-identically, the shared pages must survive the
    // sharer's preemption (the surviving sharers and the interned handle keep
    // them mapped), and every stream that ran must match its solo oracle.
    let model = model();
    let config = model.config();
    let max = config.max_seq_len;
    let blocks = config.num_blocks;
    const N: usize = 2;
    let faults = Arc::new(SeededFaults::new(
        0xD12117,
        FaultPlan {
            exhaust_probability: 0.1,
            max_exhaustions: 5,
            ..Default::default()
        },
    ));
    // The whole drill records into one flight recorder, sized so nothing is
    // evicted: the lifecycle assertions below reconstruct a stream's history
    // from the recorder *alone*.
    let obs = Obs::shared(1 << 16);
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: fused(),
        prefill_chunk_rows: 2,
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: N * max * blocks,
        },
        faults: Some(Arc::clone(&faults) as Arc<dyn haan_serve::FaultInjector>),
        obs: Some(Arc::clone(&obs) as Arc<dyn ObsSink>),
        ..Default::default()
    });
    // One whole page per block of shared prompt, paid once. The injector
    // hooks the interning prefill's allocations too: a Shed here is the
    // documented retry path, not an error.
    let prefix_tokens: [u32; 4] = [9, 2, 7, 4];
    let prefix = loop {
        match engine.intern_prefix(&model, &prefix_tokens) {
            Ok(prefix) => break prefix,
            Err(ServeError::Shed { .. }) => continue,
            Err(err) => panic!("interning only sheds under injected exhaustion, got {err:?}"),
        }
    };
    let exhaustions_before_drill = faults.injected().exhaustions;
    let prefix_pages = prefix.page_count();
    assert_eq!(prefix_pages, blocks);
    let base_prompt: [u32; 3] = [1, 2, 3];
    let mut group = engine
        .decode_group(&model, &[&base_prompt])
        .expect("base stream");
    let suffixes: Vec<Vec<u32>> = (0..8u32)
        .map(|i| vec![i % 8, (i * 3 + 1) % 8, (i + 5) % 8, (i * 7 + 2) % 8])
        .collect();
    let sharers: Vec<usize> = suffixes
        .iter()
        .map(|suffix| {
            group
                .add_stream_with_prefix(&prefix, suffix)
                .expect("offering under overload is not an error")
        })
        .collect();
    let pool = engine.kv_pool(config.embedding_dim);

    // Tick once so sharers activate and start draining their chunked
    // backlogs, then preempt one that is still mid-prefill (active, nothing
    // emitted yet): its partial prefill parks and must resume bit-identically.
    group.step_all().expect("activation tick");
    let victim = *sharers
        .iter()
        .find(|&&i| group.status(i) == StreamStatus::Active && group.generated(i).is_empty())
        .expect("a sharer is still mid-prefill after one 2-row chunk tick");
    assert!(group.preempt(victim), "an active sharer must park");
    assert_eq!(group.status(victim), StreamStatus::Queued);
    assert!(
        pool.pages_in_use() >= prefix_pages,
        "the shared pages must survive a sharer's preemption"
    );

    // Drive the drill to convergence, retrying ticks the injector fails.
    let mut ticks = 1u32;
    loop {
        ticks += 1;
        assert!(ticks < 2_000, "the drill must converge");
        match group.step_all() {
            Ok(_) => {}
            Err(LlmError::KvPoolExhausted { .. }) => continue,
            Err(err) => panic!("only pool exhaustion is expected, got {err:?}"),
        }
        let all_settled = (0..group.len())
            .all(|i| matches!(group.status(i), StreamStatus::Finished | StreamStatus::Shed));
        if all_settled {
            break;
        }
    }
    let stats = group.stats();
    assert!(
        stats.preemptions >= 1 && stats.resumes >= 1,
        "the forced park must have resumed: {stats:?}"
    );
    assert!(
        faults.injected().exhaustions > exhaustions_before_drill,
        "the injector must have fired mid-drill (i.e. mid-chunk): {:?}",
        faults.injected()
    );
    assert!(
        stats.mean_tick_occupancy_rows() > 1.0,
        "chunk rows must have ridden the batched passes: {stats:?}"
    );

    // Parity: every stream that decoded matches its solo oracle — the forced
    // mid-prefill preemption, the injected exhaustions, and the page sharing
    // are all invisible in the tokens.
    for (slot, &index) in sharers.iter().enumerate() {
        match group.status(index) {
            StreamStatus::Finished => {
                let mut prompt = prefix_tokens.to_vec();
                prompt.extend_from_slice(&suffixes[slot]);
                let expected = solo_oracle_to_capacity(&model, &prompt);
                assert_eq!(
                    &group.tokens(index)[prompt.len()..],
                    expected.as_slice(),
                    "sharer {slot} (stream {index}) diverged from its solo oracle"
                );
            }
            StreamStatus::Shed => {
                assert!(
                    group.generated(index).is_empty(),
                    "shed sharer {slot} must never decode"
                );
            }
            other => panic!("sharer {slot} ended the drill as {other:?}"),
        }
    }
    assert_eq!(
        &group.tokens(0)[base_prompt.len()..],
        solo_oracle_to_capacity(&model, &base_prompt).as_slice(),
        "the base stream must match its solo oracle"
    );

    // The observability acceptance bar: the forced victim's full lifecycle —
    // offer → admit/queue → chunked prefill → preempt → resume → finish — is
    // reconstructable from the flight recorder alone (event *kinds* only;
    // timestamps are wall-clock and excluded from determinism claims).
    assert_eq!(obs.recorder().dropped(), 0, "the ring must hold the drill");
    let corr = group.correlation_id(victim);
    let lifecycle: Vec<&'static str> = obs
        .recorder()
        .stream_events(corr)
        .iter()
        .map(|e| e.kind.label())
        .collect();
    let pos = |label: &str| {
        lifecycle
            .iter()
            .position(|&l| l == label)
            .unwrap_or_else(|| panic!("{label} missing from lifecycle {lifecycle:?}"))
    };
    assert_eq!(lifecycle[0], "offer", "lifecycle {lifecycle:?}");
    assert!(
        lifecycle[1] == "admit" || lifecycle[1] == "queue",
        "every offer resolves immediately: {lifecycle:?}"
    );
    if let Some(attach) = lifecycle.iter().position(|&l| l == "prefix_attach") {
        assert!(
            attach < pos("chunk_drain"),
            "shared pages attach before any chunk drains: {lifecycle:?}"
        );
    }
    let preempt = pos("preempt");
    assert!(
        pos("chunk_drain") < preempt,
        "the victim was parked mid-prefill, after draining a chunk: {lifecycle:?}"
    );
    let resume = pos("resume");
    assert!(preempt < resume, "the park must resume: {lifecycle:?}");
    assert!(
        lifecycle[resume..].contains(&"chunk_drain"),
        "the resumed stream re-prefills in chunks: {lifecycle:?}"
    );
    assert_eq!(
        lifecycle.last().copied(),
        Some("finish"),
        "lifecycle {lifecycle:?}"
    );
    // Engine-wide events landed too: the injected mid-drill exhaustions and
    // the coalesced dispatches are in the same recorder, uncorrelated.
    let engine_labels: Vec<&'static str> = obs
        .recorder()
        .events()
        .iter()
        .filter(|e| e.stream.is_none())
        .map(|e| e.kind.label())
        .collect();
    assert!(
        engine_labels.contains(&"pool_exhausted"),
        "{engine_labels:?}"
    );

    // Teardown: streams release their pages; the interned prefix keeps its
    // footprint until the engine drops.
    drop(group);
    drop(prefix);
    assert_eq!(pool.pages_in_use(), prefix_pages);
    engine.shutdown();
    drop(engine);
    assert_eq!(pool.pages_in_use(), 0, "every shared page must drain");
}

#[test]
fn shed_streams_get_a_typed_retry_hint_not_a_panic() {
    // A standalone decode stream against a deliberately hot pool: the refusal
    // is a typed Shed carrying the policy's retry-after hint.
    let model = model();
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: fused(),
        kv_pool: KvPoolPolicy {
            page_rows: 4,
            capacity_rows: 16,
        },
        admission: AdmissionPolicy {
            retry_after_us: 1_234,
            ..Default::default()
        },
        ..Default::default()
    });
    let err = engine
        .decode_stream(&model, &[1, 2, 3, 4])
        .expect_err("a 4-page pool cannot admit a 4-block stream");
    match err {
        ServeError::Shed { retry_after_us } => assert_eq!(retry_after_us, 1_234),
        other => panic!("expected Shed, got {other:?}"),
    }
    assert_eq!(engine.admission_stats().shed, 1);
    engine.shutdown();
}

#[test]
fn a_killed_worker_leaves_no_hung_clients() {
    // PanicWorker at batch 0: the in-flight client gets WorkerDied (it
    // returns — the assertion *is* that this line is reached), and later
    // submissions fail fast with the same typed error instead of queueing
    // into a dead engine.
    use haan::AnchorState;
    use haan_llm::norm::NormSite;
    use haan_llm::NormKind;
    use haan_serve::NormRequest;
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: fused(),
        faults: Some(Arc::new(SeededFaults::new(
            1,
            FaultPlan {
                panic_at_batch: Some(0),
                ..Default::default()
            },
        ))),
        ..Default::default()
    });
    let request = || NormRequest {
        site: NormSite {
            layer_index: 0,
            kind: NormKind::LayerNorm,
        },
        cols: 4,
        data: vec![1.0, 2.0, 3.0, 4.0],
        params: engine.intern_params(&[1.0; 4], &[0.0; 4]),
        anchors: AnchorState::new(),
        deadline_us: None,
    };
    let pending = engine.submit(request()).expect("worker still looks alive");
    assert!(matches!(pending.wait(), Err(ServeError::WorkerDied)));
    assert!(!engine.worker_is_alive());
    assert!(matches!(
        engine.submit(request()),
        Err(ServeError::WorkerDied)
    ));
    engine.shutdown();
}

#[test]
fn slow_batches_delay_but_never_hang_or_corrupt() {
    // Injected latency on every early batch: decode through the engine still
    // completes with bit-identical tokens — slowness is survivable, silence
    // is not.
    let model = model();
    let faults = Arc::new(SeededFaults::new(
        3,
        FaultPlan {
            slow_probability: 1.0,
            slow_us: 2_000,
            max_slow_batches: 5,
            ..Default::default()
        },
    ));
    let mut engine = ServeEngine::start(ServeConfig {
        normalizer: fused(),
        faults: Some(Arc::clone(&faults) as Arc<dyn haan_serve::FaultInjector>),
        ..Default::default()
    });
    let prompt: &[u32] = &[2, 9, 4];
    let mut stream = engine.decode_stream(&model, prompt).expect("admitted");
    let generated = stream.decode(4).expect("slow but correct");
    let mut oracle = StreamingModel::new_full_recompute(&model, prompt).expect("oracle");
    let expected = oracle
        .decode(4, &mut ReferenceNormalizer::new())
        .expect("oracle decode");
    assert_eq!(generated, expected);
    assert_eq!(faults.injected().slow_batches, 5, "latency budget spent");
    engine.shutdown();
}
