//! Quickstart: calibrate HAAN on a model, attach the resulting skip plan to the HAAN
//! normalizer, and compare its outputs and telemetry against exact normalization.
//!
//! The normalizer's execution backend is selected through the configuration
//! (`HaanConfig::builder().backend(BackendSelection::…)`): `Auto` (the default)
//! picks between the fused and row-parallel software kernels per batch shape and
//! thread policy, `Scalar` pins the two-pass oracle, and `AccelSim` routes the same calls through
//! the cycle-level accelerator simulator (see `examples/accelerator_sim.rs` and
//! `ARCHITECTURE.md` for the dispatch diagram).
//!
//! Run with: `cargo run --release --example quickstart`

use haan::{BackendSelection, Calibrator, HaanConfig, HaanNormalizer};
use haan_llm::norm::ReferenceNormalizer;
use haan_llm::{ModelConfig, TransformerModel};
use haan_numerics::Format;
use haan_repro::diagnostics::next_token_delta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a laptop-scale GPT-2-style model (paper layer structure, shrunk width).
    let config = ModelConfig::gpt2_117m().scaled_down(64, 128);
    let model = TransformerModel::new(&config, 2024)?;
    println!(
        "model: {} with {} normalization layers",
        config.name,
        model.num_norm_layers()
    );

    // 2. Calibrate: run a synthetic calibration set, record per-layer log(ISD), and let
    //    Algorithm 1 pick the skip range and decay coefficient.
    let outcome = Calibrator::new(16, 24)
        .with_min_gap(6)
        .calibrate_model(&model, 7)?;
    println!(
        "Algorithm 1 selected skip range ({}, {}) with decay {:.4} (correlation {:.3})",
        outcome.plan.start, outcome.plan.end, outcome.plan.decay, outcome.plan.correlation
    );

    // 3. Build the HAAN normalizer: subsampled statistics, FP16 operands, fast inverse
    //    square root, plus the calibrated skip plan. `BackendSelection::Auto` lets the
    //    engine pick the execution backend (fused vs row-parallel) per batch shape;
    //    pin `Scalar`, `Fused`, `Parallel` or `AccelSim` here to force one.
    let haan_config = HaanConfig::builder()
        .label("HAAN quickstart")
        .subsample(32)
        .format(Format::Fp16)
        .backend(BackendSelection::Auto)
        .build();
    let mut haan = HaanNormalizer::new(haan_config).with_plan(outcome.plan);
    let mut reference = ReferenceNormalizer::new();

    // 4. Run the same tokens through both normalizers and compare the next-token
    //    logits. HAAN is an approximation and this untrained, laptop-scale model has
    //    near-tied top logits, so an occasional argmax flip is expected quantization
    //    noise — report the accuracy delta instead of a binary match/mismatch.
    let tokens = [3u32, 17, 31, 45, 59, 73];
    let exact = model.logits(&tokens, &mut reference)?;
    let approx = model.logits(&tokens, &mut haan)?;
    let last = tokens.len() - 1;
    // The same metric `tests/end_to_end.rs::quickstart_accuracy_delta_stays_pinned`
    // asserts on, so the printed numbers and the pinned thresholds cannot drift.
    let delta = next_token_delta(exact.row(last), approx.row(last));
    println!(
        "next-token logits: exact argmax = {}, HAAN argmax = {} \
         (exact choice ranked #{} of {} by HAAN)",
        delta.exact_choice,
        delta.approx_choice,
        delta.rank_of_exact_choice,
        exact.row(last).len()
    );
    println!(
        "accuracy delta: mean |Δlogit| = {:.4} ({:.1}% of the exact logit spread {:.3})",
        delta.mean_abs_delta,
        100.0 * delta.mean_abs_delta / delta.exact_spread,
        delta.exact_spread
    );

    // 5. Inspect what HAAN actually did.
    let telemetry = haan.telemetry();
    println!(
        "telemetry: {} normalization calls, {:.0}% ISDs predicted, {:.0}% of input elements read",
        telemetry.calls,
        telemetry.skip_fraction() * 100.0,
        telemetry.read_fraction() * 100.0
    );
    Ok(())
}
